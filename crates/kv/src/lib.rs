//! # nearpm-kv — crash-consistent key-value structures
//!
//! Persistent key-value structures of the kind the paper's workloads exercise
//! (the PMDK example stores and PmemKV's B+-tree backend), built on the
//! transactional layer of `nearpm-pmdk`, so every mutation is failure-atomic
//! and transparently accelerated when the system has NearPM devices.
//!
//! * [`PersistentHashMap`] — fixed-bucket open-addressing hash map with
//!   64-byte values (the `hashmap` workload and the Memcached/Redis value
//!   store shape).
//! * [`PersistentIndex`] — sorted persistent index with fixed-size slots (the
//!   B-tree/B+-tree workloads' leaf-update shape).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nearpm_core::{NearPmSystem, Result, VirtAddr};
use nearpm_pmdk::ObjPool;

/// Size of a stored value in bytes (the paper's workloads use 64 B values).
pub const VALUE_SIZE: usize = 64;
/// Size of one slot: 8-byte key + 8-byte state + value.
const SLOT_SIZE: u64 = 16 + VALUE_SIZE as u64;
const STATE_FULL: u64 = 1;

fn encode_slot(key: u64, value: &[u8]) -> Vec<u8> {
    let mut buf = vec![0u8; SLOT_SIZE as usize];
    buf[0..8].copy_from_slice(&key.to_le_bytes());
    buf[8..16].copy_from_slice(&STATE_FULL.to_le_bytes());
    let n = value.len().min(VALUE_SIZE);
    buf[16..16 + n].copy_from_slice(&value[..n]);
    buf
}

fn decode_slot(buf: &[u8]) -> Option<(u64, Vec<u8>)> {
    let key = u64::from_le_bytes(buf[0..8].try_into().ok()?);
    let state = u64::from_le_bytes(buf[8..16].try_into().ok()?);
    if state == STATE_FULL {
        Some((key, buf[16..16 + VALUE_SIZE].to_vec()))
    } else {
        None
    }
}

/// A crash-consistent open-addressing hash map with a fixed bucket count.
#[derive(Debug)]
pub struct PersistentHashMap {
    base: VirtAddr,
    buckets: u64,
    len: usize,
}

impl PersistentHashMap {
    /// Creates a map with `buckets` slots inside `pool`.
    pub fn create(sys: &mut NearPmSystem, pool: &mut ObjPool, buckets: u64) -> Result<Self> {
        let base = pool.alloc(sys, buckets * SLOT_SIZE)?;
        // Zero-initialize the bucket array durably.
        for b in 0..buckets {
            pool.write_persist(sys, base.offset(b * SLOT_SIZE), &[0u8; SLOT_SIZE as usize])?;
        }
        Ok(PersistentHashMap {
            base,
            buckets,
            len: 0,
        })
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn slot_addr(&self, idx: u64) -> VirtAddr {
        self.base.offset((idx % self.buckets) * SLOT_SIZE)
    }

    fn hash(&self, key: u64) -> u64 {
        key.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.buckets
    }

    /// Inserts or updates `key` with `value` failure-atomically.
    pub fn put(
        &mut self,
        sys: &mut NearPmSystem,
        pool: &mut ObjPool,
        key: u64,
        value: &[u8],
    ) -> Result<()> {
        let mut idx = self.hash(key);
        for _ in 0..self.buckets {
            let addr = self.slot_addr(idx);
            let existing = pool.read(sys, addr, SLOT_SIZE as usize)?;
            match decode_slot(&existing) {
                Some((k, _)) if k != key => {
                    idx += 1;
                    continue;
                }
                existing_entry => {
                    let is_new = existing_entry.is_none();
                    let bytes = encode_slot(key, value);
                    pool.tx(sys, |tx, sys| tx.write(sys, addr, &bytes))?;
                    if is_new {
                        self.len += 1;
                    }
                    return Ok(());
                }
            }
        }
        panic!("hash map is full ({} buckets)", self.buckets);
    }

    /// Looks up `key`.
    pub fn get(
        &mut self,
        sys: &mut NearPmSystem,
        pool: &mut ObjPool,
        key: u64,
    ) -> Result<Option<Vec<u8>>> {
        let mut idx = self.hash(key);
        for _ in 0..self.buckets {
            let addr = self.slot_addr(idx);
            let raw = pool.read(sys, addr, SLOT_SIZE as usize)?;
            match decode_slot(&raw) {
                Some((k, v)) if k == key => return Ok(Some(v)),
                Some(_) => idx += 1,
                None => return Ok(None),
            }
        }
        Ok(None)
    }

    /// Re-reads an entry from the persistent image (used by recovery tests).
    pub fn get_persistent(&self, sys: &mut NearPmSystem, key: u64) -> Result<Option<Vec<u8>>> {
        let mut idx = self.hash(key);
        for _ in 0..self.buckets {
            let addr = self.slot_addr(idx);
            let raw = sys.persistent_read(addr, SLOT_SIZE as usize)?;
            match decode_slot(&raw) {
                Some((k, v)) if k == key => return Ok(Some(v)),
                Some(_) => idx += 1,
                None => return Ok(None),
            }
        }
        Ok(None)
    }
}

/// A crash-consistent sorted index with fixed-size slots (insertion shifts
/// within a leaf region, like a B+-tree leaf).
#[derive(Debug)]
pub struct PersistentIndex {
    base: VirtAddr,
    capacity: u64,
    keys: Vec<u64>,
}

impl PersistentIndex {
    /// Creates an index with room for `capacity` entries.
    pub fn create(sys: &mut NearPmSystem, pool: &mut ObjPool, capacity: u64) -> Result<Self> {
        let base = pool.alloc(sys, capacity * SLOT_SIZE)?;
        Ok(PersistentIndex {
            base,
            capacity,
            keys: Vec::new(),
        })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Inserts `key` with `value`, keeping entries sorted by key.
    pub fn insert(
        &mut self,
        sys: &mut NearPmSystem,
        pool: &mut ObjPool,
        key: u64,
        value: &[u8],
    ) -> Result<()> {
        assert!((self.keys.len() as u64) < self.capacity, "index full");
        let pos = self.keys.partition_point(|&k| k < key);
        let bytes = encode_slot(key, value);
        // Shift the tail within one transaction, then write the new slot —
        // the write amplification pattern of a sorted leaf.
        pool.tx(sys, |tx, sys| {
            for i in (pos..self.keys.len()).rev() {
                let from = self.base.offset(i as u64 * SLOT_SIZE);
                let to = self.base.offset((i as u64 + 1) * SLOT_SIZE);
                let data = tx.read(sys, from, SLOT_SIZE as usize)?;
                tx.write(sys, to, &data)?;
            }
            tx.write(sys, self.base.offset(pos as u64 * SLOT_SIZE), &bytes)
        })?;
        self.keys.insert(pos, key);
        Ok(())
    }

    /// Looks up `key`.
    pub fn get(
        &mut self,
        sys: &mut NearPmSystem,
        pool: &mut ObjPool,
        key: u64,
    ) -> Result<Option<Vec<u8>>> {
        match self.keys.binary_search(&key) {
            Ok(pos) => {
                let raw = pool.read(
                    sys,
                    self.base.offset(pos as u64 * SLOT_SIZE),
                    SLOT_SIZE as usize,
                )?;
                Ok(decode_slot(&raw).map(|(_, v)| v))
            }
            Err(_) => Ok(None),
        }
    }

    /// Keys in sorted order.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nearpm_core::{ExecMode, SystemConfig};

    fn setup() -> (NearPmSystem, ObjPool) {
        let mut sys = NearPmSystem::new(SystemConfig::nearpm_md().with_capacity(32 << 20));
        let pool = ObjPool::create(&mut sys, "kv", 16 << 20).unwrap();
        (sys, pool)
    }

    #[test]
    fn hashmap_put_get_update() {
        let (mut sys, mut pool) = setup();
        let mut map = PersistentHashMap::create(&mut sys, &mut pool, 128).unwrap();
        assert!(map.is_empty());
        for k in 0..32u64 {
            map.put(&mut sys, &mut pool, k, &[k as u8; VALUE_SIZE])
                .unwrap();
        }
        assert_eq!(map.len(), 32);
        for k in 0..32u64 {
            assert_eq!(
                map.get(&mut sys, &mut pool, k).unwrap(),
                Some(vec![k as u8; VALUE_SIZE])
            );
        }
        assert_eq!(map.get(&mut sys, &mut pool, 999).unwrap(), None);
        // Update in place does not grow the map.
        map.put(&mut sys, &mut pool, 5, &[0xFF; VALUE_SIZE])
            .unwrap();
        assert_eq!(map.len(), 32);
        assert_eq!(
            map.get(&mut sys, &mut pool, 5).unwrap(),
            Some(vec![0xFF; VALUE_SIZE])
        );
        assert!(sys.report().ppo_violations.is_empty());
    }

    #[test]
    fn hashmap_matches_model_under_random_ops() {
        use rand::{Rng, SeedableRng};
        let (mut sys, mut pool) = setup();
        let mut map = PersistentHashMap::create(&mut sys, &mut pool, 256).unwrap();
        let mut model = std::collections::HashMap::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..60 {
            let k = rng.gen_range(0..40u64);
            let v = vec![rng.gen::<u8>(); VALUE_SIZE];
            map.put(&mut sys, &mut pool, k, &v).unwrap();
            model.insert(k, v);
        }
        for (k, v) in &model {
            assert_eq!(map.get(&mut sys, &mut pool, *k).unwrap().as_ref(), Some(v));
        }
        assert_eq!(map.len(), model.len());
    }

    #[test]
    fn committed_hashmap_updates_survive_crash() {
        let (mut sys, mut pool) = setup();
        let mut map = PersistentHashMap::create(&mut sys, &mut pool, 64).unwrap();
        map.put(&mut sys, &mut pool, 42, &[0xAA; VALUE_SIZE])
            .unwrap();
        sys.crash();
        pool.recover(&mut sys).unwrap();
        assert_eq!(
            map.get_persistent(&mut sys, 42).unwrap(),
            Some(vec![0xAA; VALUE_SIZE])
        );
    }

    #[test]
    fn index_insert_sorted_and_lookup() {
        let (mut sys, mut pool) = setup();
        let mut idx = PersistentIndex::create(&mut sys, &mut pool, 64).unwrap();
        for k in [5u64, 1, 9, 3, 7] {
            idx.insert(&mut sys, &mut pool, k, &[k as u8; VALUE_SIZE])
                .unwrap();
        }
        assert_eq!(idx.keys(), &[1, 3, 5, 7, 9]);
        assert_eq!(idx.len(), 5);
        assert_eq!(
            idx.get(&mut sys, &mut pool, 7).unwrap(),
            Some(vec![7; VALUE_SIZE])
        );
        assert_eq!(idx.get(&mut sys, &mut pool, 4).unwrap(), None);
    }

    #[test]
    fn kv_works_in_baseline_mode_too() {
        let mut sys = NearPmSystem::new(
            SystemConfig::for_mode(ExecMode::CpuBaseline).with_capacity(16 << 20),
        );
        let mut pool = ObjPool::create(&mut sys, "kv", 8 << 20).unwrap();
        let mut map = PersistentHashMap::create(&mut sys, &mut pool, 32).unwrap();
        map.put(&mut sys, &mut pool, 1, &[1; VALUE_SIZE]).unwrap();
        assert_eq!(
            map.get(&mut sys, &mut pool, 1).unwrap(),
            Some(vec![1; VALUE_SIZE])
        );
    }
}
