//! System configuration: execution modes and platform parameters.

use nearpm_device::DispatchPolicy;
use nearpm_pm::MediaConfig;
use nearpm_sim::{LatencyModel, Topology};

/// Which of the paper's four evaluated configurations to run (Section 8.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// `Baseline`: every crash-consistency operation executes on the CPU.
    CpuBaseline,
    /// `NearPM SD`: offload to a single NearPM device.
    NearPmSd,
    /// `NearPM MD SW-sync`: two devices, CPU-polling software synchronization
    /// before every commit.
    NearPmMdSync,
    /// `NearPM MD`: two devices with delayed near-memory synchronization
    /// (the full PPO design).
    NearPmMd,
}

impl ExecMode {
    /// Human-readable label used in reports (matches the paper's legends).
    pub fn label(self) -> &'static str {
        match self {
            ExecMode::CpuBaseline => "Baseline",
            ExecMode::NearPmSd => "NearPM SD",
            ExecMode::NearPmMdSync => "NearPM MD SW-sync",
            ExecMode::NearPmMd => "NearPM MD",
        }
    }

    /// True if crash-consistency primitives are offloaded to NearPM.
    pub fn uses_ndp(self) -> bool {
        !matches!(self, ExecMode::CpuBaseline)
    }

    /// Number of NearPM devices implied by the mode.
    pub fn default_devices(self) -> usize {
        match self {
            ExecMode::CpuBaseline => 0,
            ExecMode::NearPmSd => 1,
            ExecMode::NearPmMdSync | ExecMode::NearPmMd => 2,
        }
    }

    /// All modes in report order.
    pub fn all() -> [ExecMode; 4] {
        [
            ExecMode::CpuBaseline,
            ExecMode::NearPmSd,
            ExecMode::NearPmMdSync,
            ExecMode::NearPmMd,
        ]
    }
}

/// Full configuration of a simulated NearPM system.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Execution mode.
    pub mode: ExecMode,
    /// Number of NearPM devices (0 for the baseline).
    pub devices: usize,
    /// NearPM units per device (4 in the prototype).
    pub units_per_device: usize,
    /// Request-FIFO depth per device.
    pub fifo_depth: usize,
    /// Total emulated PM capacity in bytes.
    pub pm_capacity: u64,
    /// Interleave granularity across devices in bytes.
    pub interleave_granularity: u64,
    /// CPU hardware threads available to the application.
    pub cpu_threads: usize,
    /// Latency/bandwidth model.
    pub latency: LatencyModel,
    /// Unit-assignment policy of every device's dispatcher.
    pub dispatch: DispatchPolicy,
    /// Parallel decode lanes in every device's front-end (1 in the
    /// prototype; 2 removes the decode bottleneck heavy multi-client loads
    /// hit at high unit counts).
    pub decode_lanes: usize,
    /// Storage engine backing the PM media (heap by default; file-backed
    /// for durable, process-restartable runs; sparse for huge geometries).
    pub media: MediaConfig,
    /// Worker threads for the PPO checker's batch pair sweeps (`<= 1` runs
    /// the serial fold; any count yields the identical violation list).
    pub checker_workers: usize,
    /// Stream-compact the PPO trace: at every report, events the cached
    /// checker can never reference again are evicted into a sealed summary,
    /// bounding resident memory on long self-monitoring runs. Off by
    /// default — whole-trace oracles cannot run on a compacted trace.
    pub compact_trace: bool,
    /// Record per-request latencies into the log-bucketed histogram and
    /// surface them through `RunReport::request_latency`. Off by default:
    /// latency capture is pure observation (it never perturbs the task
    /// graph), but reports stay byte-identical to historic runs unless the
    /// caller opts in.
    pub track_latency: bool,
}

impl SystemConfig {
    /// Base configuration shared by all modes: 64 MiB of PM, 4 kB
    /// interleaving, one application thread, prototype latencies.
    fn base(mode: ExecMode, devices: usize) -> Self {
        SystemConfig {
            mode,
            devices,
            units_per_device: 4,
            fifo_depth: 32,
            pm_capacity: 64 << 20,
            interleave_granularity: 4096,
            cpu_threads: 1,
            latency: LatencyModel::default(),
            dispatch: DispatchPolicy::default(),
            decode_lanes: 1,
            media: MediaConfig::default(),
            checker_workers: 1,
            compact_trace: false,
            track_latency: false,
        }
    }

    /// CPU-only baseline.
    pub fn baseline() -> Self {
        Self::base(ExecMode::CpuBaseline, 0)
    }

    /// Single NearPM device.
    pub fn nearpm_sd() -> Self {
        Self::base(ExecMode::NearPmSd, 1)
    }

    /// Two NearPM devices with software (CPU-polling) synchronization.
    pub fn nearpm_md_sync() -> Self {
        Self::base(ExecMode::NearPmMdSync, 2)
    }

    /// Two NearPM devices with delayed near-memory synchronization.
    pub fn nearpm_md() -> Self {
        Self::base(ExecMode::NearPmMd, 2)
    }

    /// Configuration for `mode` with its default device count.
    pub fn for_mode(mode: ExecMode) -> Self {
        Self::base(mode, mode.default_devices())
    }

    /// Overrides the number of NearPM units per device (Figure 19 sweep).
    pub fn with_units(mut self, units: usize) -> Self {
        self.units_per_device = units;
        self
    }

    /// Overrides the PM capacity.
    pub fn with_capacity(mut self, bytes: u64) -> Self {
        self.pm_capacity = bytes;
        self
    }

    /// Overrides the number of CPU threads (Figure 20 sweep).
    pub fn with_cpu_threads(mut self, threads: usize) -> Self {
        self.cpu_threads = threads.max(1);
        self
    }

    /// Overrides the request-FIFO depth of every device (backpressure
    /// studies; 32 in the prototype).
    pub fn with_fifo_depth(mut self, depth: usize) -> Self {
        self.fifo_depth = depth.max(1);
        self
    }

    /// Overrides the latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Overrides the unit-assignment policy (earliest-available by default;
    /// round-robin retained for regression comparisons).
    pub fn with_dispatch(mut self, dispatch: DispatchPolicy) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Overrides the media storage engine (heap by default).
    pub fn with_media(mut self, media: MediaConfig) -> Self {
        self.media = media;
        self
    }

    /// Overrides the number of decode lanes per device front-end (at
    /// least 1; the prototype has a single lane).
    pub fn with_decode_lanes(mut self, lanes: usize) -> Self {
        self.decode_lanes = lanes.max(1);
        self
    }

    /// Overrides the PPO checker's worker count (serial fold by default).
    pub fn with_checker_workers(mut self, workers: usize) -> Self {
        self.checker_workers = workers.max(1);
        self
    }

    /// Enables streaming trace compaction (off by default; incompatible
    /// with whole-trace oracles such as `report_oracle` / `check_all`).
    pub fn with_trace_compaction(mut self, compact: bool) -> Self {
        self.compact_trace = compact;
        self
    }

    /// Enables per-request latency tracking (off by default; observation
    /// only — schedules and non-latency report fields are unaffected).
    pub fn with_latency_tracking(mut self, track: bool) -> Self {
        self.track_latency = track;
        self
    }

    /// The scheduling topology implied by this configuration.
    pub fn topology(&self) -> Topology {
        Topology::with_devices(self.cpu_threads, self.devices, self.units_per_device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_properties() {
        assert!(!ExecMode::CpuBaseline.uses_ndp());
        assert!(ExecMode::NearPmMd.uses_ndp());
        assert_eq!(ExecMode::CpuBaseline.default_devices(), 0);
        assert_eq!(ExecMode::NearPmSd.default_devices(), 1);
        assert_eq!(ExecMode::NearPmMd.default_devices(), 2);
        assert_eq!(ExecMode::all().len(), 4);
        for m in ExecMode::all() {
            assert!(!m.label().is_empty());
        }
    }

    #[test]
    fn config_constructors_match_modes() {
        assert_eq!(SystemConfig::baseline().devices, 0);
        assert_eq!(SystemConfig::nearpm_sd().devices, 1);
        assert_eq!(SystemConfig::nearpm_md_sync().devices, 2);
        assert_eq!(SystemConfig::nearpm_md().devices, 2);
        assert_eq!(SystemConfig::for_mode(ExecMode::NearPmSd).devices, 1);
    }

    #[test]
    fn builder_overrides() {
        let c = SystemConfig::nearpm_md()
            .with_units(2)
            .with_capacity(1 << 20)
            .with_cpu_threads(8);
        assert_eq!(c.units_per_device, 2);
        assert_eq!(c.pm_capacity, 1 << 20);
        assert_eq!(c.cpu_threads, 8);
        let t = c.topology();
        assert_eq!(t.devices, 2);
        assert_eq!(t.units_per_device, 2);
        assert_eq!(t.cpu_threads, 8);
        // Thread count never drops below one.
        assert_eq!(SystemConfig::baseline().with_cpu_threads(0).cpu_threads, 1);
    }

    #[test]
    fn checker_knobs_default_off() {
        let c = SystemConfig::nearpm_md();
        assert_eq!(c.checker_workers, 1);
        assert!(!c.compact_trace);
        assert!(!c.track_latency);
        assert!(c.clone().with_latency_tracking(true).track_latency);
        let c = c.with_checker_workers(4).with_trace_compaction(true);
        assert_eq!(c.checker_workers, 4);
        assert!(c.compact_trace);
        // Worker count never drops below one.
        assert_eq!(
            SystemConfig::baseline()
                .with_checker_workers(0)
                .checker_workers,
            1
        );
    }
}
