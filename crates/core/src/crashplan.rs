//! Deterministic fault injection: crash boundaries and crash plans.
//!
//! A *crash boundary* is a point in a run where the persisted image can
//! change or become visible to ordering: every persist (`cpu_persist`,
//! `cpu_copy`), every offload posting (device-side persist — and the
//! mid-flight point where the request is posted but its commit handle not
//! yet retired), every sync (`sw_sync`, `delayed_sync`, `wait_for`), and
//! every commit-retire event (`release` / `release_batch` /
//! `release_batch_retired`). Between two consecutive boundaries the only
//! mutable state is volatile (CPU cache lines), so a crash strictly between
//! boundaries is functionally identical to a crash at the earlier boundary:
//! enumerating all boundaries is exhaustive over functionally distinct crash
//! points.
//!
//! A [`CrashPlan`] armed on the system (see
//! [`crate::NearPmSystem::arm_crash_plan`]) counts boundaries as they occur
//! and fires [`crate::NearPmSystem::crash`] when the configured boundary is
//! reached. The crash fires *after* the primitive's full effect (media
//! mutation and trace events) has been applied, so the primitive that
//! triggers it still returns `Ok`; every subsequent operation fails with
//! [`crate::SystemError::Crashed`] until recovery runs. Arming a plan with
//! target [`u64::MAX`] turns it into a pure boundary counter — the way the
//! crash-point explorer enumerates a run before replaying it.

/// Classification of a crash boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundaryKind {
    /// A CPU-side persist: `cpu_persist`, `cpu_copy`, `cpu_write_persist`.
    Persist,
    /// An offload posting: the device-side persist of an NDP request, which
    /// is simultaneously the mid-flight point between posting and retire.
    Offload,
    /// An ordering point: `sw_sync`, `delayed_sync`, `wait_for`.
    Sync,
    /// A commit-retire event: commit-handle release of an `OffloadBatch`.
    CommitRetire,
}

impl BoundaryKind {
    /// All boundary kinds, in taxonomy order.
    pub const ALL: [BoundaryKind; 4] = [
        BoundaryKind::Persist,
        BoundaryKind::Offload,
        BoundaryKind::Sync,
        BoundaryKind::CommitRetire,
    ];

    /// Stable short label (reports, dedup keys).
    pub fn label(self) -> &'static str {
        match self {
            BoundaryKind::Persist => "persist",
            BoundaryKind::Offload => "offload",
            BoundaryKind::Sync => "sync",
            BoundaryKind::CommitRetire => "commit-retire",
        }
    }

    fn index(self) -> usize {
        match self {
            BoundaryKind::Persist => 0,
            BoundaryKind::Offload => 1,
            BoundaryKind::Sync => 2,
            BoundaryKind::CommitRetire => 3,
        }
    }
}

impl std::fmt::Display for BoundaryKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A deterministic fault-injection plan: crash at the `n`-th boundary
/// (0-based) observed after arming, optionally filtered to one
/// [`BoundaryKind`].
#[derive(Debug, Clone)]
pub struct CrashPlan {
    target: u64,
    kind: Option<BoundaryKind>,
    matched: u64,
    by_kind: [u64; 4],
    fired: bool,
    fired_kind: Option<BoundaryKind>,
}

impl CrashPlan {
    /// Crash at the `n`-th boundary of any kind (0-based).
    pub fn at_boundary(n: u64) -> Self {
        CrashPlan {
            target: n,
            kind: None,
            matched: 0,
            by_kind: [0; 4],
            fired: false,
            fired_kind: None,
        }
    }

    /// Crash at the `n`-th [`BoundaryKind::Persist`] boundary (0-based).
    pub fn at_persist(n: u64) -> Self {
        CrashPlan::at_kind(BoundaryKind::Persist, n)
    }

    /// Crash at the `n`-th boundary of the given kind (0-based).
    pub fn at_kind(kind: BoundaryKind, n: u64) -> Self {
        CrashPlan {
            target: n,
            kind: Some(kind),
            matched: 0,
            by_kind: [0; 4],
            fired: false,
            fired_kind: None,
        }
    }

    /// A plan that never fires: counts every boundary of the run. Used to
    /// enumerate a run's boundaries before replaying it point by point.
    pub fn count_only() -> Self {
        CrashPlan::at_boundary(u64::MAX)
    }

    /// Boundaries observed since arming that match the plan's kind filter.
    pub fn observed(&self) -> u64 {
        self.matched
    }

    /// Boundaries of `kind` observed since arming (taxonomy breakdown).
    pub fn observed_of(&self, kind: BoundaryKind) -> u64 {
        self.by_kind[kind.index()]
    }

    /// Total boundaries of every kind observed since arming.
    pub fn observed_total(&self) -> u64 {
        self.by_kind.iter().sum()
    }

    /// True once the plan has injected its crash.
    pub fn fired(&self) -> bool {
        self.fired
    }

    /// The kind of the boundary the crash fired at, once fired.
    pub fn fired_kind(&self) -> Option<BoundaryKind> {
        self.fired_kind
    }

    /// Records one boundary; returns true exactly when the crash must fire.
    pub(crate) fn note(&mut self, kind: BoundaryKind) -> bool {
        self.by_kind[kind.index()] += 1;
        if self.kind.is_some_and(|k| k != kind) {
            return false;
        }
        let hit = !self.fired && self.matched == self.target;
        self.matched += 1;
        if hit {
            self.fired = true;
            self.fired_kind = Some(kind);
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_once_at_target_boundary() {
        let mut p = CrashPlan::at_boundary(2);
        assert!(!p.note(BoundaryKind::Persist));
        assert!(!p.note(BoundaryKind::Sync));
        assert!(p.note(BoundaryKind::Offload));
        assert!(p.fired());
        assert_eq!(p.fired_kind(), Some(BoundaryKind::Offload));
        // Never fires twice even though the count keeps running.
        assert!(!p.note(BoundaryKind::Offload));
        assert_eq!(p.observed(), 4);
        assert_eq!(p.observed_total(), 4);
    }

    #[test]
    fn kind_filter_counts_only_matching_boundaries() {
        let mut p = CrashPlan::at_persist(1);
        assert!(!p.note(BoundaryKind::Persist));
        assert!(!p.note(BoundaryKind::Sync));
        assert!(!p.note(BoundaryKind::CommitRetire));
        assert!(p.note(BoundaryKind::Persist));
        assert_eq!(p.observed(), 2);
        assert_eq!(p.observed_total(), 4);
        assert_eq!(p.observed_of(BoundaryKind::Persist), 2);
        assert_eq!(p.observed_of(BoundaryKind::Sync), 1);
        assert_eq!(p.observed_of(BoundaryKind::Offload), 0);
    }

    #[test]
    fn count_only_never_fires() {
        let mut p = CrashPlan::count_only();
        for _ in 0..1000 {
            assert!(!p.note(BoundaryKind::Persist));
        }
        assert!(!p.fired());
        assert_eq!(p.observed(), 1000);
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<&str> = BoundaryKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels, ["persist", "offload", "sync", "commit-retire"]);
        assert_eq!(BoundaryKind::Sync.to_string(), "sync");
    }
}
