//! Error type of the NearPM system facade.

use nearpm_device::DeviceError;
use nearpm_pm::PoolError;

/// Errors surfaced by [`crate::NearPmSystem`].
#[derive(Debug, Clone, PartialEq)]
pub enum SystemError {
    /// Pool management / translation failure.
    Pool(PoolError),
    /// Device-side failure (FIFO full, translation miss).
    Device(DeviceError),
    /// An operation was attempted while the system is in the crashed state
    /// (before recovery was started).
    Crashed,
    /// Recovery was requested but the system is running normally — there is
    /// nothing to recover from.
    NotCrashed,
    /// The operation requires NearPM devices but the system is configured as
    /// the CPU-only baseline.
    NoDevices,
    /// A log arena ran out of slots.
    LogArenaFull {
        /// Pool whose arena is exhausted.
        pool: nearpm_pm::PoolId,
    },
    /// A fixed-capacity persistent map has no free slot for a new key.
    MapFull {
        /// Bucket capacity of the exhausted map.
        buckets: u64,
    },
    /// The media backend failed to create, open, persist, or validate a
    /// device image (I/O failure, missing file, manifest mismatch). The
    /// underlying cause is flattened to a message so the error stays
    /// cloneable and comparable.
    Media {
        /// What went wrong, including any I/O error text.
        message: String,
    },
}

impl std::fmt::Display for SystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemError::Pool(e) => write!(f, "pool error: {e}"),
            SystemError::Device(e) => write!(f, "device error: {e}"),
            SystemError::Crashed => write!(f, "system is crashed; run recovery first"),
            SystemError::NotCrashed => {
                write!(f, "system is not crashed; there is nothing to recover")
            }
            SystemError::NoDevices => write!(f, "operation requires NearPM devices"),
            SystemError::LogArenaFull { pool } => write!(f, "log arena exhausted for {pool}"),
            SystemError::MapFull { buckets } => {
                write!(f, "persistent hash map is full ({buckets} buckets)")
            }
            SystemError::Media { message } => write!(f, "media error: {message}"),
        }
    }
}

impl std::error::Error for SystemError {}

impl From<PoolError> for SystemError {
    fn from(e: PoolError) -> Self {
        SystemError::Pool(e)
    }
}

impl From<DeviceError> for SystemError {
    fn from(e: DeviceError) -> Self {
        SystemError::Device(e)
    }
}

impl From<nearpm_pm::MediaError> for SystemError {
    fn from(e: nearpm_pm::MediaError) -> Self {
        SystemError::Media {
            message: e.to_string(),
        }
    }
}

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, SystemError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = SystemError::Crashed;
        assert!(e.to_string().contains("crashed"));
        let e = SystemError::NotCrashed;
        assert!(e.to_string().contains("not crashed"));
        let e = SystemError::NoDevices;
        assert!(e.to_string().contains("NearPM devices"));
        let e = SystemError::LogArenaFull {
            pool: nearpm_pm::PoolId(1),
        };
        assert!(e.to_string().contains("pool1"));
        let e = SystemError::MapFull { buckets: 8 };
        assert!(e.to_string().contains("8 buckets"));
        let e: SystemError = PoolError::Unmapped(nearpm_pm::VirtAddr(0)).into();
        assert!(matches!(e, SystemError::Pool(_)));
        let e: SystemError = DeviceError::FifoFull.into();
        assert!(matches!(e, SystemError::Device(_)));
    }
}
