//! Deferred PPO trace construction.
//!
//! Functional effects are applied while the task graph is being built, but
//! event *timestamps* only exist once the graph has been scheduled. The
//! [`TraceBuilder`] therefore records events against [`TaskId`]s and resolves
//! them into a [`nearpm_ppo::Trace`] after scheduling, so the PPO checkers
//! validate the ordering the timing model actually produced.

use nearpm_ppo::{Agent, EventKind, Interval, ProcId, Sharing, SyncId, Trace};
use nearpm_sim::{Schedule, TaskId};

/// A trace event whose timestamp is the finish time of a scheduled task.
#[derive(Debug, Clone)]
struct PendingEvent {
    agent: Agent,
    kind: EventKind,
    interval: Interval,
    sharing: Sharing,
    proc: Option<ProcId>,
    sync: Option<SyncId>,
    task: Option<TaskId>,
}

/// Accumulates PPO events during graph construction.
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    devices: usize,
    pending: Vec<PendingEvent>,
    next_proc: u64,
    next_sync: u64,
}

impl TraceBuilder {
    /// Creates a builder for a system with `devices` NearPM devices.
    pub fn new(devices: usize) -> Self {
        TraceBuilder {
            devices,
            pending: Vec::new(),
            next_proc: 0,
            next_sync: 0,
        }
    }

    /// Allocates a fresh NDP-procedure id.
    pub fn new_proc(&mut self) -> ProcId {
        let id = ProcId(self.next_proc);
        self.next_proc += 1;
        id
    }

    /// Allocates a fresh synchronization-event id.
    pub fn new_sync(&mut self) -> SyncId {
        let id = SyncId(self.next_sync);
        self.next_sync += 1;
        id
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Records an event tied to `task`'s finish time (or to time zero when
    /// `task` is `None`, used for the failure marker).
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        agent: Agent,
        kind: EventKind,
        interval: Interval,
        sharing: Sharing,
        proc: Option<ProcId>,
        sync: Option<SyncId>,
        task: Option<TaskId>,
    ) {
        self.pending.push(PendingEvent {
            agent,
            kind,
            interval,
            sharing,
            proc,
            sync,
            task,
        });
    }

    /// Resolves the pending events into a concrete trace using the schedule's
    /// task finish times. Events are emitted in recording order, which is the
    /// per-agent program order by construction.
    pub fn resolve(&self, schedule: &Schedule) -> Trace {
        let mut trace = Trace::new(self.devices);
        for e in &self.pending {
            let ts = e
                .task
                .map(|t| schedule.timing(t).finish.as_ps())
                .unwrap_or(u64::MAX);
            trace.record(e.agent, e.kind, e.interval, e.sharing, e.proc, e.sync, ts);
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nearpm_sim::{LatencyModel, Region, Resource, TaskGraph};

    #[test]
    fn events_resolve_to_task_finish_times() {
        let model = LatencyModel::default();
        let mut graph = TaskGraph::new();
        let a = graph.add(
            "cpu",
            Resource::Cpu(0),
            model.cpu_compute(100.0),
            Region::Application,
            &[],
        );
        let b = graph.add(
            "ndp",
            Resource::NdpUnit { device: 0, unit: 0 },
            model.ndp_copy(4096),
            Region::CcDataMovement,
            &[a],
        );

        let mut tb = TraceBuilder::new(1);
        let p = tb.new_proc();
        tb.record(
            Agent::Cpu,
            EventKind::Offload,
            Interval::new(0, 0),
            Sharing::Shared,
            Some(p),
            None,
            Some(a),
        );
        tb.record(
            Agent::Ndp(0),
            EventKind::Persist,
            Interval::new(0x100, 64),
            Sharing::NdpManaged,
            Some(p),
            None,
            Some(b),
        );
        assert_eq!(tb.len(), 2);

        let schedule = nearpm_sim::Schedule::compute(&graph);
        let trace = tb.resolve(&schedule);
        assert_eq!(trace.len(), 2);
        let events = trace.events();
        assert_eq!(events[0].timestamp_ps, schedule.timing(a).finish.as_ps());
        assert_eq!(events[1].timestamp_ps, schedule.timing(b).finish.as_ps());
        assert!(events[0].timestamp_ps < events[1].timestamp_ps);
    }

    #[test]
    fn failure_marker_without_task_sorts_last() {
        let graph = TaskGraph::new();
        let mut tb = TraceBuilder::new(1);
        tb.record(
            Agent::Cpu,
            EventKind::Failure,
            Interval::new(0, 0),
            Sharing::Shared,
            None,
            None,
            None,
        );
        let schedule = nearpm_sim::Schedule::compute(&graph);
        let trace = tb.resolve(&schedule);
        assert_eq!(trace.failure_time(), Some(u64::MAX));
    }

    #[test]
    fn ids_are_unique() {
        let mut tb = TraceBuilder::new(2);
        assert!(tb.is_empty());
        assert_ne!(tb.new_proc(), tb.new_proc());
        assert_ne!(tb.new_sync(), tb.new_sync());
    }
}
