//! Incremental PPO trace construction and cached checking.
//!
//! Functional effects are applied while the task graph is being built. Since
//! the graph maintains every task's start/finish time incrementally (see
//! `nearpm_sim::TaskGraph`), trace events can be timestamped **eagerly** at
//! record time — the finish time of the task they are tied to — instead of
//! being resolved in a separate pass after scheduling. The [`TraceBuilder`]
//! therefore owns a concrete [`nearpm_ppo::Trace`] that only ever grows, and
//! a cached [`IncrementalTraceIndex`] that folds in exactly the events
//! appended since the last check. Multi-`report()` runs (the fig18–20
//! sweeps) stop rebuilding the checker index from scratch each time.

use nearpm_ppo::{
    check_all_cached, Agent, EventKind, IncrementalChecker, Interval, PpoViolation, ProcId,
    Sharing, SyncId, Trace,
};
use nearpm_sim::{TaskGraph, TaskId};

/// Accumulates PPO events during graph construction and checks them against
/// a cached violation-level incremental checker.
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    trace: Trace,
    checker: IncrementalChecker,
}

impl TraceBuilder {
    /// Creates a builder for a system with `devices` NearPM devices.
    pub fn new(devices: usize) -> Self {
        TraceBuilder {
            trace: Trace::new(devices),
            checker: IncrementalChecker::new(),
        }
    }

    /// Allocates a fresh NDP-procedure id.
    pub fn new_proc(&mut self) -> ProcId {
        self.trace.new_proc()
    }

    /// Allocates a fresh synchronization-event id.
    pub fn new_sync(&mut self) -> SyncId {
        self.trace.new_sync()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// True if no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// Records an event timestamped at `task`'s finish time, read from the
    /// graph's incrementally maintained schedule (or at the end of time when
    /// `task` is `None`, used for the failure marker of a crash with no
    /// preceding CPU work).
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        graph: &TaskGraph,
        agent: Agent,
        kind: EventKind,
        interval: Interval,
        sharing: Sharing,
        proc: Option<ProcId>,
        sync: Option<SyncId>,
        task: Option<TaskId>,
    ) {
        let ts = task
            .map(|t| graph.task_finish(t).as_ps())
            .unwrap_or(u64::MAX);
        self.trace
            .record(agent, kind, interval, sharing, proc, sync, ts);
    }

    /// The accumulated trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Runs the PPO checkers, folding only the events recorded since the
    /// previous call into the cached incremental checker — repeated clean
    /// checks of a growing trace cost O(new events · log n) end to end.
    pub fn check(&mut self) -> Vec<PpoViolation> {
        check_all_cached(&self.trace, &mut self.checker)
    }

    /// Number of events already folded into the cached checker.
    pub fn indexed_events(&self) -> usize {
        self.checker.consumed()
    }

    /// Number of NDP persists to NDP-managed addresses that PPO allowed to
    /// be delayed past CPU program order (Invariant 2's relaxation),
    /// maintained incrementally alongside the cached checker — the same
    /// answer as `nearpm_ppo::relaxed_persist_count` without rescanning the
    /// trace.
    pub fn relaxed_persist_count(&mut self) -> usize {
        self.checker.relaxed_persist_count(&self.trace)
    }

    /// Sets the worker count for the checker's batch pair sweeps (`<= 1`
    /// selects the serial fold; any count yields the identical violation
    /// list).
    pub fn set_workers(&mut self, workers: usize) {
        self.checker.set_workers(workers);
    }

    /// Retires every event the cached checker has folded and can never
    /// reference again (see `IncrementalChecker::pinned_floor`), evicting
    /// them from the live trace into its sealed summary. Returns how many
    /// events were evicted. Callers must not run whole-trace oracles
    /// (`check_all`, `report_oracle`) on a compacted trace — the live slice
    /// is a suffix.
    pub fn compact(&mut self) -> usize {
        let floor = self.checker.pinned_floor();
        self.trace.retire_through(floor)
    }

    /// Number of events still resident in the live trace vector.
    pub fn resident_events(&self) -> usize {
        self.trace.resident()
    }

    /// Number of events evicted by [`TraceBuilder::compact`].
    pub fn retired_events(&self) -> usize {
        self.trace.retired()
    }

    /// Clears the trace and invalidates the cached checker index.
    pub fn reset(&mut self) {
        self.trace.clear();
        self.checker.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nearpm_sim::{LatencyModel, Region, Resource};

    fn two_task_graph() -> (TaskGraph, TaskId, TaskId) {
        let model = LatencyModel::default();
        let mut graph = TaskGraph::new();
        let a = graph.add(
            "cpu",
            Resource::Cpu(0),
            model.cpu_compute(100.0),
            Region::Application,
            &[],
        );
        let b = graph.add(
            "ndp",
            Resource::NdpUnit { device: 0, unit: 0 },
            model.ndp_copy(4096),
            Region::CcDataMovement,
            &[a],
        );
        (graph, a, b)
    }

    #[test]
    fn events_carry_task_finish_times() {
        let (graph, a, b) = two_task_graph();
        let mut tb = TraceBuilder::new(1);
        let p = tb.new_proc();
        tb.record(
            &graph,
            Agent::Cpu,
            EventKind::Offload,
            Interval::new(0, 0),
            Sharing::Shared,
            Some(p),
            None,
            Some(a),
        );
        tb.record(
            &graph,
            Agent::Ndp(0),
            EventKind::Persist,
            Interval::new(0x100, 64),
            Sharing::NdpManaged,
            Some(p),
            None,
            Some(b),
        );
        assert_eq!(tb.len(), 2);

        // The eager timestamps equal the graph's incrementally maintained
        // finish times: incremental timing is prefix-stable.
        let events = tb.trace().events();
        assert_eq!(events[0].timestamp_ps, graph.task_finish(a).as_ps());
        assert_eq!(events[1].timestamp_ps, graph.task_finish(b).as_ps());
        assert!(events[0].timestamp_ps < events[1].timestamp_ps);
    }

    #[test]
    fn failure_marker_without_task_sorts_last() {
        let graph = TaskGraph::new();
        let mut tb = TraceBuilder::new(1);
        tb.record(
            &graph,
            Agent::Cpu,
            EventKind::Failure,
            Interval::new(0, 0),
            Sharing::Shared,
            None,
            None,
            None,
        );
        assert_eq!(tb.trace().failure_time(), Some(u64::MAX));
    }

    #[test]
    fn check_folds_events_incrementally_and_reset_invalidates() {
        let (graph, a, b) = two_task_graph();
        let mut tb = TraceBuilder::new(1);
        let p = tb.new_proc();
        tb.record(
            &graph,
            Agent::Cpu,
            EventKind::Offload,
            Interval::new(0, 0),
            Sharing::Shared,
            Some(p),
            None,
            Some(a),
        );
        assert!(tb.check().is_empty());
        assert_eq!(tb.indexed_events(), 1);
        tb.record(
            &graph,
            Agent::Ndp(0),
            EventKind::Persist,
            Interval::new(0x100, 64),
            Sharing::NdpManaged,
            Some(p),
            None,
            Some(b),
        );
        assert!(tb.check().is_empty());
        assert_eq!(tb.indexed_events(), 2);
        tb.reset();
        assert!(tb.is_empty());
        assert_eq!(tb.indexed_events(), 0);
    }

    #[test]
    fn ids_are_unique() {
        let mut tb = TraceBuilder::new(2);
        assert!(tb.is_empty());
        assert_ne!(tb.new_proc(), tb.new_proc());
        assert_ne!(tb.new_sync(), tb.new_sync());
    }
}
