//! The NearPM system facade: CPU model, devices, offload path, trace, report.
//!
//! [`NearPmSystem`] is the object applications and crash-consistency
//! mechanisms program against. It couples
//!
//! * a **functional** model — emulated PM ([`PmSpace`]), the CPU write-back
//!   cache, pools, and the NearPM devices that actually move bytes — with
//! * a **timing** model — every operation appends tasks to a [`TaskGraph`]
//!   which is scheduled when the run finishes — and
//! * a **PPO trace** — every memory event is recorded and checked against the
//!   PPO invariants using the timestamps the schedule produced.
//!
//! The same program, run under different [`ExecMode`]s, produces the
//! baseline, NearPM SD, NearPM MD SW-sync, and NearPM MD configurations the
//! paper evaluates.

use std::collections::HashMap;

use nearpm_device::{DeviceConfig, NearPmDevice, NearPmOp, NearPmRequest, RequestId, ThreadId};
use nearpm_pm::{
    AddrRange, CpuCache, InterleaveConfig, MediaConfig, MediaError, PhysAddr, PmSpace, PmTraffic,
    PoolId, PoolRegistry, VirtAddr,
};
use nearpm_ppo::{Agent, EventKind, Interval, PpoViolation, ProcId, Sharing, Trace};
use nearpm_sim::{
    LatencyHistogram, LatencyModel, Region, Resource, SimDuration, SimTime, TaskGraph, TaskId,
};

use crate::batch::OffloadBatch;
use crate::config::{ExecMode, SystemConfig};
use crate::crashplan::{BoundaryKind, CrashPlan};
use crate::error::{Result, SystemError};
use crate::trace::TraceBuilder;

/// File name of the geometry manifest written by
/// [`NearPmSystem::persist_to`] next to the per-device image files.
pub const MANIFEST_NAME: &str = "manifest.nearpm";

/// Parsed contents of a media manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MediaManifest {
    capacity: u64,
    devices: usize,
    granularity: u64,
    /// Checkpoint epoch counter at the time the manifest was written
    /// (0 when the image predates epochs or none have completed).
    epoch: u64,
}

impl MediaManifest {
    fn parse(text: &str) -> std::result::Result<Self, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some("nearpm-media-manifest v1") => {}
            other => return Err(format!("unsupported manifest header {other:?}")),
        }
        let (mut capacity, mut devices, mut granularity) = (None, None, None);
        let mut epoch = 0;
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once(' ')
                .ok_or_else(|| format!("malformed manifest line {line:?}"))?;
            match key {
                "capacity" => capacity = Some(parse_u64(key, value)?),
                "devices" => devices = Some(parse_u64(key, value)? as usize),
                "granularity" => granularity = Some(parse_u64(key, value)?),
                "epoch" => epoch = parse_u64(key, value)?,
                _ => {} // unknown keys are ignored for forward compatibility
            }
        }
        Ok(MediaManifest {
            capacity: capacity.ok_or("manifest missing capacity")?,
            devices: devices.ok_or("manifest missing devices")?,
            granularity: granularity.ok_or("manifest missing granularity")?,
            epoch,
        })
    }
}

fn parse_u64(key: &str, value: &str) -> std::result::Result<u64, String> {
    value
        .parse()
        .map_err(|e| format!("manifest {key} {value:?}: {e}"))
}

/// Handle to an offloaded NearPM procedure.
#[derive(Debug, Clone)]
pub struct OffloadHandle {
    /// PPO procedure id.
    pub proc: ProcId,
    /// Device that executed the request.
    pub device: usize,
    /// Request id on that device.
    pub request: RequestId,
    /// Final task of the device-side execution.
    pub finish: TaskId,
    /// Payload bytes moved.
    pub bytes: u64,
}

/// Per-request latency summary read off the log-bucketed
/// [`LatencyHistogram`] — present in a [`RunReport`] only when the run
/// tracked latencies ([`SystemConfig::with_latency_tracking`]) and recorded
/// at least one request.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Number of requests recorded.
    pub count: u64,
    /// Median latency (log-bucketed, ≤ 1 % relative error).
    pub p50: SimDuration,
    /// 99th-percentile latency (log-bucketed).
    pub p99: SimDuration,
    /// 99.9th-percentile latency (log-bucketed).
    pub p999: SimDuration,
    /// Exact maximum latency.
    pub max: SimDuration,
    /// Exact mean latency.
    pub mean: SimDuration,
}

impl LatencySummary {
    /// Reads a summary off a histogram; `None` when no latencies were
    /// recorded (so reports of runs that never tracked a request compare
    /// equal to historic ones).
    pub fn from_histogram(h: &LatencyHistogram) -> Option<Self> {
        if h.is_empty() {
            return None;
        }
        Some(LatencySummary {
            count: h.count(),
            p50: h.p50(),
            p99: h.p99(),
            p999: h.p999(),
            max: h.max(),
            mean: h.mean(),
        })
    }
}

/// Summary of one simulated run.
///
/// `PartialEq` compares every field (region map order-independently), which
/// is how the differential tests assert the incremental report path and the
/// oracle recompute produce byte-equal reports.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Execution mode of the run.
    pub mode: ExecMode,
    /// End-to-end simulated time.
    pub makespan: SimDuration,
    /// Busy time attributed to application logic (incl. its own persists).
    pub app_time: SimDuration,
    /// Busy time attributed to crash-consistency work.
    pub cc_time: SimDuration,
    /// Per-region busy time.
    pub region_time: HashMap<&'static str, SimDuration>,
    /// Wall-clock time during which CPU and NearPM work overlapped.
    pub cpu_ndp_overlap: SimDuration,
    /// Overlap as a fraction of the makespan (Figure 18).
    pub overlap_fraction: f64,
    /// PPO violations detected in the trace (must be empty).
    pub ppo_violations: Vec<PpoViolation>,
    /// Number of NDP persists to NDP-managed addresses that PPO allowed to
    /// be delayed past CPU program order (Invariant 2's relaxation) — the
    /// "relaxed persists" share that quantifies how much ordering freedom
    /// the partitioned model granted this run.
    pub relaxed_persists: usize,
    /// Number of trace events.
    pub trace_events: usize,
    /// Bytes moved by NearPM devices.
    pub ndp_bytes_moved: u64,
    /// Requests executed by NearPM devices.
    pub ndp_requests: u64,
    /// Aggregate PM traffic.
    pub pm_traffic: PmTraffic,
    /// Per NDP-unit utilization `((device, unit), busy/makespan)`, read off
    /// the schedule's merged busy-interval timeline. Balanced values indicate
    /// earliest-available dispatch is spreading work across units.
    pub ndp_unit_utilization: Vec<((usize, usize), f64)>,
    /// Highest request-FIFO occupancy observed on any device, modeled from
    /// the task graph's in-flight front-end window (a request occupies its
    /// slot from arrival until its issue stage hands it to a unit).
    pub fifo_high_watermark: usize,
    /// Total time hosts spent stalled at a full request FIFO, summed over
    /// devices — the backpressure the front-end exerted on the control path.
    pub fifo_stall_time: SimDuration,
    /// Number of requests that stalled at a full FIFO, summed over devices.
    pub fifo_stalls: u64,
    /// Per-request latency summary (`None` unless the run tracked
    /// latencies and recorded at least one request).
    pub request_latency: Option<LatencySummary>,
}

impl RunReport {
    /// Crash-consistency share of total busy time (Figure 1a).
    /// [`f64::NAN`] for an empty run (no busy time at all).
    pub fn cc_fraction(&self) -> f64 {
        let total = self.app_time + self.cc_time;
        self.cc_time.ratio(total)
    }

    /// Elapsed (critical-path) time attributable to crash consistency: the
    /// part of the makespan not covered by application work. In the CPU
    /// baseline this equals the crash-consistency busy time; with NearPM it
    /// shrinks further because offloaded work overlaps with the application.
    /// This is the quantity Figure 15 reports the speedup of.
    pub fn cc_elapsed(&self) -> SimDuration {
        self.makespan.saturating_sub(self.app_time)
    }

    /// Speedup of this run relative to `baseline` on end-to-end time.
    /// [`f64::NAN`] when this run is empty (a speedup over a zero makespan
    /// is undefined, not a 0x slowdown).
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        baseline.makespan.ratio(self.makespan)
    }

    /// Speedup of this run relative to `baseline` within the code regions
    /// that maintain crash consistency (Figure 15). [`f64::NAN`] when this
    /// run spent no elapsed time on crash consistency.
    pub fn cc_speedup_over(&self, baseline: &RunReport) -> f64 {
        baseline.cc_elapsed().ratio(self.cc_elapsed())
    }
}

/// The simulated NearPM machine.
#[derive(Debug)]
pub struct NearPmSystem {
    config: SystemConfig,
    space: PmSpace,
    pools: PoolRegistry,
    cache: CpuCache,
    devices: Vec<NearPmDevice>,
    graph: TaskGraph,
    cpu_tail: Vec<Option<TaskId>>,
    /// Per-thread pending FIFO backpressure: when a thread's last offload
    /// found a full request FIFO, the front-end task whose retirement frees
    /// its slot. The thread's next CPU task orders after it — a full FIFO
    /// blocks the host's control path, not just the device's decode.
    fifo_stall: Vec<Option<TaskId>>,
    /// Per-thread pending open-loop admission: the zero-duration arrival
    /// marker pinned at the request's absolute arrival time. The thread's
    /// next CPU task orders after it, so service never begins before the
    /// request arrived.
    pending_admission: Vec<Option<TaskId>>,
    /// Per-request latency histogram (populated only when
    /// `config.track_latency`; observation only — never feeds scheduling).
    latency_hist: LatencyHistogram,
    trace: TraceBuilder,
    ndp_managed: Vec<AddrRange>,
    next_txn: u64,
    crashed: bool,
    recovering: bool,
    /// Armed fault-injection plan: counts crash boundaries and fires
    /// [`NearPmSystem::crash`] at the configured one.
    crash_plan: Option<CrashPlan>,
    /// Reusable staging buffer for CPU-driven copies (avoids a heap
    /// allocation per `cpu_copy`).
    scratch: Vec<u8>,
    /// Checkpoint epoch counter, mirrored durably into the media manifest
    /// whenever one exists so a reattaching process learns it without
    /// replay.
    checkpoint_epoch: u64,
    /// Directory holding the media manifest, remembered from `persist_to` /
    /// `reopen_from`; epoch updates rewrite the manifest there.
    manifest_dir: Option<std::path::PathBuf>,
}

impl NearPmSystem {
    /// Builds a system from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configured media backend cannot be created (heap media
    /// never fails); use [`NearPmSystem::try_new`] to handle backend errors.
    pub fn new(config: SystemConfig) -> Self {
        Self::try_new(config).expect("media backend construction failed")
    }

    /// Builds a system from a configuration, surfacing media-backend
    /// construction failures as [`SystemError::Media`].
    pub fn try_new(config: SystemConfig) -> Result<Self> {
        let devices_for_interleave = config.devices.max(1);
        let space = PmSpace::with_media(
            config.pm_capacity,
            InterleaveConfig::new(devices_for_interleave, config.interleave_granularity),
            &config.media,
        )?;
        Self::with_space(config, space)
    }

    fn with_space(config: SystemConfig, space: PmSpace) -> Result<Self> {
        let pools = PoolRegistry::new(config.pm_capacity);
        let devices = (0..config.devices)
            .map(|id| {
                NearPmDevice::new(DeviceConfig {
                    id,
                    units: config.units_per_device,
                    fifo_depth: config.fifo_depth,
                    dispatch: config.dispatch,
                    decode_lanes: config.decode_lanes,
                })
            })
            .collect();
        let mut trace = TraceBuilder::new(config.devices.max(1));
        trace.set_workers(config.checker_workers);
        Ok(NearPmSystem {
            cpu_tail: vec![None; config.cpu_threads],
            fifo_stall: vec![None; config.cpu_threads],
            pending_admission: vec![None; config.cpu_threads],
            latency_hist: LatencyHistogram::new(),
            devices,
            space,
            pools,
            cache: CpuCache::new(),
            graph: TaskGraph::new(),
            trace,
            ndp_managed: Vec::new(),
            next_txn: 0,
            crashed: false,
            recovering: false,
            crash_plan: None,
            scratch: Vec::new(),
            checkpoint_epoch: 0,
            manifest_dir: None,
            config,
        })
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Execution mode.
    pub fn mode(&self) -> ExecMode {
        self.config.mode
    }

    /// Latency model in use.
    pub fn latency(&self) -> &LatencyModel {
        &self.config.latency
    }

    /// Number of NearPM devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Allocates a fresh transaction id.
    pub fn next_txn_id(&mut self) -> u64 {
        let id = self.next_txn;
        self.next_txn += 1;
        id
    }

    /// True if a crash has been injected and recovery has not started.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    // ------------------------------------------------------------------
    // Pools and address management
    // ------------------------------------------------------------------

    /// Creates a PM pool and registers its translation with every device
    /// (the `NearPM_init_device` + pool-creation flow).
    pub fn create_pool(&mut self, name: &str, size: u64) -> Result<PoolId> {
        let id = self.pools.create_pool(name, size)?;
        let pool = self.pools.pool(id)?;
        let (virt, phys, len) = (pool.virt_base(), pool.phys_base(), pool.size());
        for dev in &mut self.devices {
            dev.register_pool(id, virt, phys, len);
        }
        Ok(id)
    }

    /// Allocates `len` bytes in a pool.
    pub fn alloc(&mut self, pool: PoolId, len: u64, align: u64) -> Result<VirtAddr> {
        Ok(self.pools.pool_mut(pool)?.alloc(len, align)?)
    }

    /// Frees a pool allocation.
    pub fn free(&mut self, pool: PoolId, addr: VirtAddr) -> Result<()> {
        Ok(self.pools.pool_mut(pool)?.free(addr)?)
    }

    /// Read-only access to the pool registry.
    pub fn pools(&self) -> &PoolRegistry {
        &self.pools
    }

    /// Registers a virtual range as NDP-managed (logs, checkpoints, shadow
    /// pages). Accesses to these ranges are classified accordingly in the
    /// PPO trace and benefit from relaxed persist ordering.
    pub fn register_ndp_managed(&mut self, range: AddrRange) {
        self.ndp_managed.push(range);
    }

    /// Sharing classification of a virtual range.
    pub fn classify(&self, addr: VirtAddr, len: u64) -> Sharing {
        let probe = AddrRange::new(addr, len.max(1));
        if self.ndp_managed.iter().any(|r| r.overlaps(&probe)) {
            Sharing::NdpManaged
        } else {
            Sharing::Shared
        }
    }

    /// The device that owns the physical block backing `addr`.
    pub fn device_of(&self, addr: VirtAddr) -> Result<usize> {
        let phys = self.pools.translate(addr)?;
        Ok(self.space.device_of(phys))
    }

    /// Splits a virtual range into per-device spans `(addr, len, device)`.
    pub fn device_spans(&self, addr: VirtAddr, len: u64) -> Result<Vec<(VirtAddr, u64, usize)>> {
        let phys = self.pools.translate(addr)?;
        let spans = self.space.interleave().split(phys, len);
        let mut out = Vec::with_capacity(spans.len());
        let mut offset = 0u64;
        for s in spans {
            out.push((addr.offset(offset), s.len, s.device));
            offset += s.len;
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // CPU-side execution
    // ------------------------------------------------------------------

    fn check_not_crashed(&self) -> Result<()> {
        if self.crashed {
            Err(SystemError::Crashed)
        } else {
            Ok(())
        }
    }

    fn cpu_resource(&self, thread: usize) -> Resource {
        Resource::Cpu(thread % self.config.cpu_threads)
    }

    fn push_cpu_task(
        &mut self,
        thread: usize,
        label: &'static str,
        duration: SimDuration,
        region: Region,
        extra_deps: &[TaskId],
    ) -> TaskId {
        let thread = thread % self.config.cpu_threads;
        let mut deps: Vec<TaskId> = Vec::with_capacity(extra_deps.len() + 2);
        if let Some(tail) = self.cpu_tail[thread] {
            deps.push(tail);
        }
        if let Some(stall) = self.fifo_stall[thread].take() {
            // The thread stalled at a full request FIFO while posting its
            // previous command; it resumes when the blocking front-end stage
            // retires and frees the slot.
            deps.push(stall);
        }
        if let Some(arrival) = self.pending_admission[thread].take() {
            // Open-loop admission: service of the next request cannot begin
            // before its pinned arrival marker.
            deps.push(arrival);
        }
        deps.extend_from_slice(extra_deps);
        deps.sort_unstable();
        deps.dedup();
        let id = self
            .graph
            .add(label, self.cpu_resource(thread), duration, region, &deps);
        self.cpu_tail[thread] = Some(id);
        id
    }

    /// Earliest simulated time at which `thread`'s CPU resource is free —
    /// the open-loop driver's server-selection key (pick the thread with
    /// the smallest value, ties to the lowest index, for earliest dispatch).
    pub fn cpu_available(&self, thread: usize) -> SimTime {
        self.graph.resource_available(self.cpu_resource(thread))
    }

    /// Admits an open-loop request that arrives at absolute simulated time
    /// `at` on `thread`: pins a zero-duration arrival marker at `at` and
    /// arranges for the thread's *next* CPU task to order after it, so
    /// service never begins before the request arrived (an idle server
    /// waits; a busy server queues the request behind its current work).
    /// Returns the marker's task id — the driver measures the request span
    /// from the marker's index.
    pub fn admit_request_at(&mut self, thread: usize, at: SimTime) -> TaskId {
        let thread = thread % self.config.cpu_threads;
        let id = self.graph.add_pinned_marker(
            "open-loop arrival",
            self.cpu_resource(thread),
            at,
            Region::Application,
        );
        self.pending_admission[thread] = Some(id);
        id
    }

    /// Records one request latency into the per-request histogram (no-op
    /// unless the run tracks latencies).
    pub fn record_request_latency(&mut self, latency: SimDuration) {
        if self.config.track_latency {
            self.latency_hist.record(latency);
        }
    }

    /// Records the closed-loop span latency of every task at index `>=
    /// from` — max finish minus min start over the span, the
    /// admission-to-retire time of the operation those tasks implement.
    /// Pure observation over the timing columns (which survive trace
    /// compaction in full); returns the latency, or `None` when tracking is
    /// off or the span is empty.
    pub fn record_span_latency(&mut self, from: usize) -> Option<SimDuration> {
        if !self.config.track_latency || from >= self.graph.len() {
            return None;
        }
        let latency = self.graph.max_finish_since(from) - self.graph.min_start_since(from);
        self.latency_hist.record(latency);
        Some(latency)
    }

    /// Read-only access to the per-request latency histogram (empty unless
    /// the run tracks latencies).
    pub fn latency_histogram(&self) -> &LatencyHistogram {
        &self.latency_hist
    }

    fn host_conflicts(&mut self, phys: PhysAddr, len: u64, is_write: bool) -> Vec<TaskId> {
        let mut deps = Vec::new();
        for dev in &mut self.devices {
            deps.extend(dev.host_access_conflicts(phys, len, is_write));
        }
        deps
    }

    /// Pure application compute (no PM access).
    pub fn cpu_compute(&mut self, thread: usize, ns: f64) -> Result<TaskId> {
        self.check_not_crashed()?;
        let d = self.config.latency.cpu_compute(ns);
        Ok(self.push_cpu_task(thread, "app-compute", d, Region::Application, &[]))
    }

    /// CPU load of `len` bytes from PM.
    pub fn cpu_read(
        &mut self,
        thread: usize,
        addr: VirtAddr,
        len: usize,
        region: Region,
    ) -> Result<Vec<u8>> {
        self.check_not_crashed()?;
        let phys = self.pools.translate(addr)?;
        let deps = self.host_conflicts(phys, len as u64, false);
        let data = self.cache.load_vec(&mut self.space, phys, len);
        let duration = self.config.latency.cpu_pm_read(len as u64);
        let task = self.push_cpu_task(thread, "cpu-read", duration, region, &deps);
        let kind = if self.recovering {
            EventKind::RecoveryRead
        } else {
            EventKind::Read
        };
        let sharing = self.classify(addr, len as u64);
        self.trace.record(
            &self.graph,
            Agent::Cpu,
            kind,
            Interval::new(addr.raw(), len as u64),
            sharing,
            None,
            None,
            Some(task),
        );
        Ok(data)
    }

    /// CPU store of `data` at `addr` (visible, not yet persistent).
    pub fn cpu_write(
        &mut self,
        thread: usize,
        addr: VirtAddr,
        data: &[u8],
        region: Region,
    ) -> Result<TaskId> {
        self.check_not_crashed()?;
        let phys = self.pools.translate(addr)?;
        let deps = self.host_conflicts(phys, data.len() as u64, true);
        self.cache.store(&mut self.space, phys, data);
        let duration = SimDuration::from_ns(self.config.latency.llc_latency_ns)
            + SimDuration::from_transfer(data.len() as u64, self.config.latency.cpu_pm_write_gbps);
        let task = self.push_cpu_task(thread, "cpu-write", duration, region, &deps);
        let sharing = self.classify(addr, data.len() as u64);
        self.trace.record(
            &self.graph,
            Agent::Cpu,
            EventKind::Write,
            Interval::new(addr.raw(), data.len() as u64),
            sharing,
            None,
            None,
            Some(task),
        );
        Ok(task)
    }

    /// Persist barrier over `addr..addr+len`: write back dirty lines + fence.
    pub fn cpu_persist(
        &mut self,
        thread: usize,
        addr: VirtAddr,
        len: u64,
        region: Region,
    ) -> Result<TaskId> {
        self.check_not_crashed()?;
        let phys = self.pools.translate(addr)?;
        self.cache.flush(&mut self.space, phys, len);
        let lines = LatencyModel::cache_lines(len);
        let duration = SimDuration::from_ns(self.config.latency.clwb_issue_ns) * lines
            + SimDuration::from_ns(self.config.latency.clwb_drain_ns)
            + SimDuration::from_ns(self.config.latency.sfence_ns);
        let task = self.push_cpu_task(thread, "cpu-persist", duration, region, &[]);
        let sharing = self.classify(addr, len);
        self.trace.record(
            &self.graph,
            Agent::Cpu,
            EventKind::Persist,
            Interval::new(addr.raw(), len),
            sharing,
            None,
            None,
            Some(task),
        );
        self.note_boundary(BoundaryKind::Persist);
        Ok(task)
    }

    /// Store followed by persist (the common "update in place" step).
    pub fn cpu_write_persist(
        &mut self,
        thread: usize,
        addr: VirtAddr,
        data: &[u8],
        region: Region,
    ) -> Result<TaskId> {
        self.cpu_write(thread, addr, data, region)?;
        self.cpu_persist(thread, addr, data.len() as u64, region)
    }

    /// CPU-driven PM-to-PM copy with persist of the destination. This is the
    /// data-movement core of the CPU baseline's crash-consistency work.
    pub fn cpu_copy(
        &mut self,
        thread: usize,
        src: VirtAddr,
        dst: VirtAddr,
        len: u64,
        region: Region,
    ) -> Result<TaskId> {
        self.check_not_crashed()?;
        let src_phys = self.pools.translate(src)?;
        let dst_phys = self.pools.translate(dst)?;
        let mut deps = self.host_conflicts(src_phys, len, false);
        deps.extend(self.host_conflicts(dst_phys, len, true));
        // Reuse the per-system scratch buffer instead of allocating a fresh
        // vector for every copy.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.resize(len as usize, 0);
        self.cache.load(&mut self.space, src_phys, &mut scratch);
        self.cache.store(&mut self.space, dst_phys, &scratch);
        self.scratch = scratch;
        self.cache.flush(&mut self.space, dst_phys, len);
        let duration = self.config.latency.cpu_pm_copy(len);
        let task = self.push_cpu_task(thread, "cpu-copy", duration, region, &deps);
        let src_sharing = self.classify(src, len);
        let dst_sharing = self.classify(dst, len);
        self.trace.record(
            &self.graph,
            Agent::Cpu,
            EventKind::Read,
            Interval::new(src.raw(), len),
            src_sharing,
            None,
            None,
            Some(task),
        );
        self.trace.record(
            &self.graph,
            Agent::Cpu,
            EventKind::Write,
            Interval::new(dst.raw(), len),
            dst_sharing,
            None,
            None,
            Some(task),
        );
        self.trace.record(
            &self.graph,
            Agent::Cpu,
            EventKind::Persist,
            Interval::new(dst.raw(), len),
            dst_sharing,
            None,
            None,
            Some(task),
        );
        self.note_boundary(BoundaryKind::Persist);
        Ok(task)
    }

    /// A CPU-side busy-wait / bookkeeping task attributed to a CC region.
    pub fn cpu_overhead(
        &mut self,
        thread: usize,
        label: &'static str,
        ns: f64,
        region: Region,
    ) -> Result<TaskId> {
        self.check_not_crashed()?;
        Ok(self.push_cpu_task(thread, label, SimDuration::from_ns(ns), region, &[]))
    }

    // ------------------------------------------------------------------
    // Offload path
    // ------------------------------------------------------------------

    /// Offloads a crash-consistency primitive to the device owning its
    /// payload, optionally adding extra ordering dependencies (used by the
    /// delayed-synchronization commit path).
    ///
    /// `extra_deps` are **device-side** ordering constraints: the command is
    /// posted over the control path immediately (the CPU does not wait), and
    /// the device defers the request's issue stage until they complete —
    /// the paper's delayed sync keeps synchronization off the CPU's critical
    /// path by letting the near-memory handler do the waiting.
    pub fn offload(
        &mut self,
        thread: usize,
        pool: PoolId,
        op: NearPmOp,
        extra_deps: &[TaskId],
    ) -> Result<OffloadHandle> {
        self.check_not_crashed()?;
        if self.devices.is_empty() {
            return Err(SystemError::NoDevices);
        }
        // Determine the owning device from the first operand range.
        let primary = op
            .write_ranges()
            .first()
            .map(|(a, _)| *a)
            .or_else(|| op.read_ranges().first().map(|(a, _)| *a));
        let device = match primary {
            Some(addr) => {
                let phys = self.pools.translate(addr)?;
                self.space.device_of(phys) % self.devices.len()
            }
            None => {
                // No operand pins the request to a device: send it to the
                // device whose dispatcher frees first (deterministic ties
                // toward the lowest index), mirroring the units'
                // earliest-available policy.
                (0..self.devices.len())
                    .min_by_key(|&d| (self.graph.resource_available(Resource::Dispatcher(d)), d))
                    .expect("checked non-empty above")
            }
        };

        // Command issue on the CPU (posted MMIO write over the control path;
        // device-side ordering deps do not hold the CPU up).
        let issue = self.push_cpu_task(
            thread,
            "cmd-issue",
            self.config.latency.cmd_issue(),
            Region::CcOffload,
            &[],
        );
        let proc = self.trace.new_proc();
        self.trace.record(
            &self.graph,
            Agent::Cpu,
            EventKind::Offload,
            Interval::new(0, 0),
            Sharing::Shared,
            Some(proc),
            None,
            Some(issue),
        );

        // The CPU-visible side of the data must be written back before the
        // device reads it (Invariant 2 implementation: "writing back all
        // updates to PM on the CPU side before invoking an NDP procedure").
        let read_ranges = op.read_ranges();
        for (addr, len) in &read_ranges {
            let phys = self.pools.translate(*addr)?;
            self.cache.flush(&mut self.space, phys, *len);
        }

        let request = NearPmRequest::new(pool, ThreadId(thread as u32), op);
        let exec = {
            let dev = &mut self.devices[device];
            dev.submit_ordered(
                request,
                &mut self.space,
                &mut self.graph,
                &self.config.latency,
                &[issue],
                extra_deps,
            )?
        };
        if exec.stall_dep.is_some() {
            // The command found the FIFO full: the posting thread is blocked
            // on the control path until the slot frees.
            self.fifo_stall[thread % self.config.cpu_threads] = exec.stall_dep;
        }

        // Record the device-side accesses in the PPO trace. Reads are
        // timestamped at the issue stage (where operand translation and the
        // conflict check complete), writes/persists at the final task.
        for (v, _p, len) in &exec.reads {
            let sharing = self.classify(*v, *len);
            self.trace.record(
                &self.graph,
                Agent::Ndp(device),
                EventKind::Read,
                Interval::new(v.raw(), *len),
                sharing,
                Some(proc),
                None,
                Some(exec.issue),
            );
        }
        for (v, _p, len) in &exec.writes {
            let sharing = self.classify(*v, *len);
            self.trace.record(
                &self.graph,
                Agent::Ndp(device),
                EventKind::Write,
                Interval::new(v.raw(), *len),
                sharing,
                Some(proc),
                None,
                Some(exec.finish),
            );
            self.trace.record(
                &self.graph,
                Agent::Ndp(device),
                EventKind::Persist,
                Interval::new(v.raw(), *len),
                sharing,
                Some(proc),
                None,
                Some(exec.finish),
            );
        }

        self.note_boundary(BoundaryKind::Offload);

        Ok(OffloadHandle {
            proc,
            device,
            request: exec.request,
            finish: exec.finish,
            bytes: exec.bytes_moved,
        })
    }

    /// Posts an offload and records its handle in `batch`, returning a copy
    /// of the handle. This is the split-phase posting primitive: a
    /// transaction phase posts every one of its offloads into the batch
    /// first, and only then materializes a completion point over the whole
    /// group ([`NearPmSystem::wait_for_batch`] /
    /// [`NearPmSystem::sw_sync_batch`] /
    /// [`NearPmSystem::delayed_sync_batch`]).
    pub fn offload_into(
        &mut self,
        batch: &mut OffloadBatch,
        thread: usize,
        pool: PoolId,
        op: NearPmOp,
        extra_deps: &[TaskId],
    ) -> Result<OffloadHandle> {
        let handle = self.offload(thread, pool, op, extra_deps)?;
        batch.push(handle.clone());
        Ok(handle)
    }

    /// CPU waits for the completion of offloaded procedures (completion
    /// notification over the control path).
    pub fn wait_for(&mut self, thread: usize, handles: &[&OffloadHandle]) -> Result<TaskId> {
        self.check_not_crashed()?;
        let deps: Vec<TaskId> = handles.iter().map(|h| h.finish).collect();
        let duration = self.config.latency.notify();
        let task = self.push_cpu_task(thread, "wait-ndp", duration, Region::CcSync, &deps);
        self.note_boundary(BoundaryKind::Sync);
        Ok(task)
    }

    /// Software (CPU-polling) synchronization across devices: the CPU polls a
    /// completion flag on every involved device before proceeding. This is
    /// the `NearPM MD SW-sync` commit path.
    pub fn sw_sync(&mut self, thread: usize, handles: &[&OffloadHandle]) -> Result<TaskId> {
        self.check_not_crashed()?;
        let deps: Vec<TaskId> = handles.iter().map(|h| h.finish).collect();
        let mut devices: Vec<usize> = handles.iter().map(|h| h.device).collect();
        devices.sort_unstable();
        devices.dedup();
        let duration = self.config.latency.cpu_poll() * devices.len().max(1) as u64;
        let task = self.push_cpu_task(thread, "sw-sync", duration, Region::CcSync, &deps);
        self.record_sync_events(handles, task);
        self.note_boundary(BoundaryKind::Sync);
        Ok(task)
    }

    /// Records the trace side of a synchronization point: one **proc-scoped**
    /// `Sync` event per participating (device, procedure) pair, so Invariant
    /// 3 guarantees exactly the procedures whose handles took part — a sync
    /// never vouches for unrelated late work, and a participating
    /// procedure's late write can no longer hide behind the unscoped
    /// temporal under-approximation.
    fn record_sync_events(&mut self, handles: &[&OffloadHandle], task: TaskId) {
        let mut pairs: Vec<(usize, ProcId)> = handles.iter().map(|h| (h.device, h.proc)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        let sync = self.trace.new_sync();
        for (device, proc) in pairs {
            self.trace.record(
                &self.graph,
                Agent::Ndp(device),
                EventKind::Sync,
                Interval::new(0, 0),
                Sharing::NdpManaged,
                Some(proc),
                Some(sync),
                Some(task),
            );
        }
    }

    /// Delayed near-memory synchronization: the multi-device handlers
    /// exchange completion notifications off the CPU's critical path. Returns
    /// the barrier task that log deletion must depend on.
    pub fn delayed_sync(&mut self, handles: &[&OffloadHandle]) -> Result<TaskId> {
        self.check_not_crashed()?;
        if self.devices.is_empty() {
            return Err(SystemError::NoDevices);
        }
        let deps: Vec<TaskId> = handles.iter().map(|h| h.finish).collect();
        let mut devices: Vec<usize> = handles.iter().map(|h| h.device).collect();
        devices.sort_unstable();
        devices.dedup();
        let anchor = devices.first().copied().unwrap_or(0);
        // The completion exchange runs near memory on the anchor device's
        // front-end — on the earliest-available issue queue, NOT on the
        // shared dispatcher: a sync waiting for unit work would otherwise
        // head-of-line block every later request's decode behind it, which
        // is exactly the fig20 multithread collapse.
        let units = self.devices[anchor].unit_count().max(1);
        // `min_by_key` keeps the first minimum, so ties break toward the
        // lowest unit index and the choice stays deterministic.
        let sync_resource = (0..units)
            .map(|unit| Resource::IssueQueue {
                device: anchor,
                unit,
            })
            .min_by_key(|r| self.graph.resource_available(*r))
            .expect("a device has at least one unit");
        let task = self.graph.add_arrival_ordered(
            "md-sync",
            sync_resource,
            self.config.latency.notify(),
            Region::CcSync,
            &deps,
        );
        self.record_sync_events(handles, task);
        self.note_boundary(BoundaryKind::Sync);
        Ok(task)
    }

    /// Releases the in-flight ordering records of offloaded procedures (at
    /// transaction commit, when the host no longer needs ordering against
    /// them).
    pub fn release(&mut self, handles: &[&OffloadHandle]) {
        for h in handles {
            if let Some(dev) = self.devices.get_mut(h.device) {
                dev.release_request(h.request);
            }
        }
        if !handles.is_empty() {
            self.note_boundary(BoundaryKind::CommitRetire);
        }
    }

    // ------------------------------------------------------------------
    // Split-phase groups: synchronization over a whole OffloadBatch
    // ------------------------------------------------------------------

    /// [`NearPmSystem::wait_for`] over a whole posted group. Returns `None`
    /// without adding any task when the group is empty (a phase that posted
    /// nothing needs no completion point).
    pub fn wait_for_batch(
        &mut self,
        thread: usize,
        batch: &OffloadBatch,
    ) -> Result<Option<TaskId>> {
        if batch.is_empty() {
            return Ok(None);
        }
        self.wait_for(thread, &batch.refs()).map(Some)
    }

    /// [`NearPmSystem::sw_sync`] over a whole posted group (`None` when
    /// empty).
    pub fn sw_sync_batch(&mut self, thread: usize, batch: &OffloadBatch) -> Result<Option<TaskId>> {
        if batch.is_empty() {
            return Ok(None);
        }
        self.sw_sync(thread, &batch.refs()).map(Some)
    }

    /// [`NearPmSystem::delayed_sync`] over a whole posted group (`None` when
    /// empty). The returned barrier task is what the commit phase's log
    /// deletion / page switch must order after.
    pub fn delayed_sync_batch(&mut self, batch: &OffloadBatch) -> Result<Option<TaskId>> {
        if batch.is_empty() {
            return Ok(None);
        }
        self.delayed_sync(&batch.refs()).map(Some)
    }

    /// Releases the in-flight ordering records of a whole posted group and
    /// clears it, leaving the batch ready for the next transaction.
    pub fn release_batch(&mut self, batch: &mut OffloadBatch) {
        let emptied = !batch.is_empty();
        for h in batch.handles() {
            if let Some(dev) = self.devices.get_mut(h.device) {
                dev.release_request(h.request);
            }
        }
        batch.clear();
        if emptied {
            self.note_boundary(BoundaryKind::CommitRetire);
        }
    }

    /// Releases the handles in `batch` whose device-side execution has
    /// **retired** — finished no later than every thread's current point in
    /// simulated time — keeping the rest grouped for a later call. Returns
    /// how many were released.
    ///
    /// This is the commit-handle release path: the `CommitLog` offloads a
    /// transaction posts at commit used to be dropped without ever being
    /// released, so their in-flight records accumulated for the whole run.
    /// Releasing at the *next* transaction's begin bounds the table — and
    /// restricting the release to handles that finished no later than the
    /// **minimum over every active thread's** clock keeps the modeled
    /// timing bit-identical: any future consumer of an in-flight record's
    /// conflict dependency (a CPU access of an active thread, or a device
    /// stage reached through some thread's command-issue task) starts at or
    /// after its thread's current time, which is at or after that minimum,
    /// so dropping the record can never move a start time. Threads that
    /// have never issued a task are excluded from the bar — counting them
    /// would pin it at time zero and silently defeat the release in
    /// configurations with idle threads; the corner this concedes (a thread
    /// issuing its *first* task later, at an earlier simulated time, that
    /// conflicts with a released commit record) cannot arise for the
    /// per-thread log arenas the commit batches cover. A still-executing
    /// commit (e.g. one held up by a delayed multi-device sync) keeps its
    /// records until a later begin observes its retirement.
    pub fn release_batch_retired(&mut self, batch: &mut OffloadBatch) -> usize {
        let now = self
            .cpu_tail
            .iter()
            .flatten()
            .map(|&t| self.graph.task_finish(t))
            .min()
            .unwrap_or(SimTime::ZERO);
        let graph = &self.graph;
        let devices = &mut self.devices;
        let mut released = 0;
        batch.retain(|h| {
            if graph.task_finish(h.finish) <= now {
                if let Some(dev) = devices.get_mut(h.device) {
                    dev.release_request(h.request);
                }
                released += 1;
                false
            } else {
                true
            }
        });
        if released > 0 {
            self.note_boundary(BoundaryKind::CommitRetire);
        }
        released
    }

    // ------------------------------------------------------------------
    // Crash and recovery
    // ------------------------------------------------------------------

    /// Records one crash boundary and fires the armed [`CrashPlan`] when it
    /// matches. Called as the **last** action of every boundary primitive:
    /// the primitive's full effect (media mutation, trace events) is already
    /// applied when the crash hits, so the triggering call still returns
    /// `Ok` and every subsequent operation fails with
    /// [`SystemError::Crashed`].
    fn note_boundary(&mut self, kind: BoundaryKind) {
        if self.crashed {
            return;
        }
        if let Some(plan) = self.crash_plan.as_mut() {
            if plan.note(kind) {
                self.crash();
            }
        }
    }

    /// Arms a fault-injection plan. Boundaries are counted from this point
    /// on, so arming *after* setup (pool creation, mkfs-style
    /// initialization) scopes the plan to the workload proper. Arm
    /// [`CrashPlan::count_only`] to enumerate a run's boundaries without
    /// crashing.
    pub fn arm_crash_plan(&mut self, plan: CrashPlan) {
        self.crash_plan = Some(plan);
    }

    /// Disarms and returns the current plan (its counters and fired flag
    /// intact), leaving the system free of fault injection.
    pub fn disarm_crash_plan(&mut self) -> Option<CrashPlan> {
        self.crash_plan.take()
    }

    /// The armed plan, if any (inspect counters without disarming).
    pub fn crash_plan(&self) -> Option<&CrashPlan> {
        self.crash_plan.as_ref()
    }

    /// Injects a failure: **all** volatile state is lost — dirty CPU cache
    /// lines, every device's queued FIFO requests and in-flight access
    /// table, and pending host-side FIFO-stall dependencies. The PM media
    /// survives. Idempotent: crashing an already-crashed system changes
    /// nothing.
    pub fn crash(&mut self) {
        if self.crashed {
            return;
        }
        self.cache.crash();
        for dev in &mut self.devices {
            dev.crash();
        }
        for stall in &mut self.fifo_stall {
            *stall = None;
        }
        for pending in &mut self.pending_admission {
            *pending = None;
        }
        let marker = self.cpu_tail.iter().flatten().copied().max();
        self.trace.record(
            &self.graph,
            Agent::Cpu,
            EventKind::Failure,
            Interval::new(0, 0),
            Sharing::Shared,
            None,
            None,
            marker,
        );
        self.crashed = true;
        self.recovering = false;
    }

    /// Begins recovery after a crash: the system becomes usable again and
    /// subsequent CPU reads are recorded as recovery reads until
    /// [`NearPmSystem::finish_recovery`] is called.
    ///
    /// Returns [`SystemError::NotCrashed`] when the system is running
    /// normally — recovery on a healthy system is a caller bug, not a
    /// silent no-op. Calling it again *while already recovering* is allowed
    /// (recovery code may be re-entered after a crash during recovery).
    pub fn begin_recovery(&mut self) -> Result<()> {
        if !self.crashed && !self.recovering {
            return Err(SystemError::NotCrashed);
        }
        self.crashed = false;
        self.recovering = true;
        Ok(())
    }

    /// Marks recovery complete; subsequent reads are ordinary reads again.
    pub fn finish_recovery(&mut self) {
        self.recovering = false;
    }

    /// Direct read of the persistent image, bypassing the (now empty) CPU
    /// cache — what recovery code sees immediately after a restart.
    pub fn persistent_read(&mut self, addr: VirtAddr, len: usize) -> Result<Vec<u8>> {
        let phys = self.pools.translate(addr)?;
        Ok(self.space.read_vec(phys, len))
    }

    /// Starts recording every media mutation (see
    /// [`nearpm_pm::PmSpace::enable_write_log`]). Call right after
    /// construction so the log is a complete history of the image.
    pub fn enable_media_write_log(&mut self) {
        self.space.enable_write_log();
    }

    /// Starts recording media mutations with a payload-byte cap (see
    /// [`nearpm_pm::PmSpace::enable_write_log_with_limit`]).
    pub fn enable_media_write_log_with_limit(&mut self, max_bytes: u64) {
        self.space.enable_write_log_with_limit(max_bytes);
    }

    /// Number of recorded media mutations (0 when logging is off).
    pub fn media_write_log_len(&self) -> usize {
        self.space.write_log_len()
    }

    /// The typed overflow error, if the bounded media write log exceeded
    /// its byte limit.
    pub fn media_write_log_overflow(&self) -> Option<nearpm_pm::WriteLogOverflow> {
        self.space.write_log_overflow()
    }

    /// Differential replay check: true iff replaying the recorded media
    /// write log onto a fresh zeroed space reproduces the current persistent
    /// image byte for byte. False when logging was never enabled.
    pub fn verify_write_log_replay(&self) -> bool {
        self.space.replay_matches()
    }

    /// Borrow of one backing device's full media image (diagnostics and the
    /// pipelined-vs-serial differential tests, which assert byte equality of
    /// the whole persistent image).
    pub fn device_media(&self, device: usize) -> &[u8] {
        self.space.device_contents(device)
    }

    /// Number of backing media devices (≥ 1 even in the CPU baseline, where
    /// the PM is still interleaved storage without NearPM logic).
    pub fn media_count(&self) -> usize {
        self.space.interleave().devices
    }

    /// Owned copy of one backing device's full media image; works for every
    /// storage engine (unlike [`NearPmSystem::device_media`], which needs a
    /// contiguous in-RAM image) and does not perturb traffic statistics.
    pub fn device_image(&self, device: usize) -> Vec<u8> {
        self.space.device_image(device)
    }

    /// The storage engine backing the PM media.
    pub fn media_kind(&self) -> nearpm_pm::MediaKind {
        self.space.media_kind()
    }

    /// RAM currently held resident by the media backends (0 for file-backed
    /// devices, whose images live in their files).
    pub fn media_resident_bytes(&self) -> usize {
        self.space.resident_bytes()
    }

    /// Flushes every media backend to durable storage (fsync for
    /// file-backed devices; no-op for volatile engines).
    pub fn sync_media(&mut self) -> Result<()> {
        Ok(self.space.sync_all()?)
    }

    // ------------------------------------------------------------------
    // Restartable runs: persist / reopen
    // ------------------------------------------------------------------

    /// Writes the device geometry manifest and every device's full media
    /// image into `dir`, so a fresh process can attach with
    /// [`NearPmSystem::reopen_from`]. Works from any storage engine (a
    /// heap-backed run can be checkpointed to disk); for a file-backed
    /// space whose images already live in `dir` the image bytes are simply
    /// rewritten in place. Only the *persistence domain* is saved —
    /// volatile state (dirty cache lines, device FIFOs) is deliberately
    /// not, exactly as a real power failure would leave things.
    pub fn persist_to(&mut self, dir: &std::path::Path) -> Result<()> {
        std::fs::create_dir_all(dir)
            .map_err(|e| MediaError::io(format!("create image dir {}", dir.display()), e))?;
        let devices = self.space.interleave().devices;
        let file_cfg = MediaConfig::File {
            dir: dir.to_path_buf(),
        };
        let in_place = self.space.media_config() == &file_cfg;
        for d in 0..devices {
            if in_place {
                continue; // the files already hold the image
            }
            let path = dir.join(MediaConfig::device_file_name(d));
            let image = self.space.device_image(d);
            std::fs::write(&path, &image)
                .map_err(|e| MediaError::io(format!("write image {}", path.display()), e))?;
        }
        self.space.sync_all()?;
        // The manifest is written last: its presence marks a complete image.
        self.write_manifest(dir)?;
        self.manifest_dir = Some(dir.to_path_buf());
        Ok(())
    }

    /// The serialized manifest for the current geometry and epoch.
    fn manifest_text(&self) -> String {
        format!(
            "nearpm-media-manifest v1\ncapacity {}\ndevices {}\ngranularity {}\nepoch {}\n",
            self.config.pm_capacity,
            self.space.interleave().devices,
            self.config.interleave_granularity,
            self.checkpoint_epoch,
        )
    }

    /// Durably (re)writes the manifest in `dir` via a temp file and rename,
    /// so a crash mid-write leaves either the old manifest or the new one —
    /// never a torn file.
    fn write_manifest(&self, dir: &std::path::Path) -> Result<()> {
        use std::io::Write;
        let manifest = dir.join(MANIFEST_NAME);
        let tmp = dir.join(format!("{MANIFEST_NAME}.tmp"));
        let mut f = std::fs::File::create(&tmp)
            .map_err(|e| MediaError::io(format!("create manifest {}", tmp.display()), e))?;
        f.write_all(self.manifest_text().as_bytes())
            .and_then(|()| f.sync_all())
            .map_err(|e| MediaError::io(format!("write manifest {}", tmp.display()), e))?;
        drop(f);
        std::fs::rename(&tmp, &manifest)
            .map_err(|e| MediaError::io(format!("install manifest {}", manifest.display()), e))?;
        Ok(())
    }

    /// The checkpoint epoch most recently made durable (0 until a
    /// checkpointing mechanism advances it). After
    /// [`NearPmSystem::reopen_from`] this is read back from the manifest, so
    /// reattachment does not need a replay pass to rediscover it.
    pub fn checkpoint_epoch(&self) -> u64 {
        self.checkpoint_epoch
    }

    /// Records a completed checkpoint epoch. When the system has a media
    /// manifest on disk (after [`NearPmSystem::persist_to`] or
    /// [`NearPmSystem::reopen_from`]), the manifest is atomically rewritten
    /// so the epoch survives process death alongside the images it
    /// describes; otherwise the epoch is tracked in the persistence-domain
    /// model only.
    pub fn set_checkpoint_epoch(&mut self, epoch: u64) -> Result<()> {
        self.checkpoint_epoch = epoch;
        if let Some(dir) = self.manifest_dir.clone() {
            self.write_manifest(&dir)?;
        }
        Ok(())
    }

    /// Attaches a fresh system to the media images a previous process left
    /// in `dir` (written by [`NearPmSystem::persist_to`], or by a
    /// file-backed run that died). The manifest's geometry must match
    /// `config`; the images are opened file-backed without zeroing.
    ///
    /// The reopened system starts in the **crashed** state with a recorded
    /// failure event, mirroring [`NearPmSystem::crash`]: whatever volatile
    /// state the previous process had is gone, and callers must run their
    /// recovery path (`begin_recovery` → mechanism recovery →
    /// `finish_recovery`) before normal operation — the same protocol the
    /// in-process crash-point explorer proves invariants against.
    pub fn reopen_from(mut config: SystemConfig, dir: &std::path::Path) -> Result<Self> {
        let manifest_path = dir.join(MANIFEST_NAME);
        let text = std::fs::read_to_string(&manifest_path)
            .map_err(|e| MediaError::io(format!("read manifest {}", manifest_path.display()), e))?;
        let manifest = MediaManifest::parse(&text)
            .map_err(|msg| MediaError::msg(format!("{}: {msg}", manifest_path.display())))?;
        let devices_for_interleave = config.devices.max(1);
        if manifest.capacity != config.pm_capacity
            || manifest.devices != devices_for_interleave
            || manifest.granularity != config.interleave_granularity
        {
            return Err(SystemError::Media {
                message: format!(
                    "manifest geometry mismatch: image has capacity={} devices={} \
                     granularity={}, config wants capacity={} devices={} granularity={}",
                    manifest.capacity,
                    manifest.devices,
                    manifest.granularity,
                    config.pm_capacity,
                    devices_for_interleave,
                    config.interleave_granularity
                ),
            });
        }
        let media = MediaConfig::File {
            dir: dir.to_path_buf(),
        };
        let space = PmSpace::reopen(
            config.pm_capacity,
            InterleaveConfig::new(devices_for_interleave, config.interleave_granularity),
            &media,
        )?;
        config.media = media;
        let mut sys = Self::with_space(config, space)?;
        sys.checkpoint_epoch = manifest.epoch;
        sys.manifest_dir = Some(dir.to_path_buf());
        // The previous process's volatile state is gone; surface that as a
        // crash so recovery-protocol checks behave exactly as after an
        // in-process failure.
        sys.crash();
        Ok(sys)
    }

    // ------------------------------------------------------------------
    // Reporting
    // ------------------------------------------------------------------

    /// Produces the run report from the system's **incrementally
    /// maintained** observability state. The task graph keeps its region and
    /// resource busy sums, makespan, and merged busy-interval timeline up to
    /// date as tasks are added; trace events carry eager timestamps; and the
    /// cached violation-level checker folds in only the events recorded
    /// since the last report. A report after k new events therefore does
    /// O(k · log n) work — no full re-aggregation, no trace re-walk — which
    /// is what makes continuous mid-run sampling
    /// ([`NearPmSystem::sample`]) affordable. The retained O(n) recompute
    /// path is [`NearPmSystem::report_oracle`].
    pub fn report(&mut self) -> RunReport {
        self.build_report()
    }

    /// A cheap periodic [`RunReport`] snapshot taken **mid-run**: identical
    /// content to [`NearPmSystem::report`] (the whole report path is
    /// incremental now), named separately so call sites self-document that
    /// the run continues afterwards. Sampling never perturbs the simulated
    /// timeline — it only advances the cached checker — so a sampled run's
    /// final report is byte-identical to an unsampled one's.
    pub fn sample(&mut self) -> RunReport {
        self.build_report()
    }

    /// Like [`NearPmSystem::report`] but also returns a copy of the trace
    /// for further inspection.
    pub fn report_with_trace(&mut self) -> (RunReport, Trace) {
        let report = self.build_report();
        (report, self.trace.trace().clone())
    }

    /// The report fields read straight from live device/media counters —
    /// identical in the incremental and oracle assembly paths by
    /// construction, extracted so a future field cannot desynchronize the
    /// two report shapes. Returns `(ndp_bytes_moved, ndp_requests,
    /// fifo_high_watermark, fifo_stall_time, fifo_stalls)`.
    #[allow(clippy::type_complexity)]
    fn device_report_fields(&self) -> (u64, u64, usize, SimDuration, u64) {
        let (ndp_bytes_moved, ndp_requests) = self.devices.iter().fold((0, 0), |(b, r), d| {
            (b + d.stats().bytes_moved, r + d.stats().requests)
        });
        let (fifo_high_watermark, fifo_stall_time, fifo_stalls) =
            self.devices
                .iter()
                .fold((0, SimDuration::ZERO, 0), |(hw, stall, n), d| {
                    (
                        hw.max(d.fifo_high_watermark()),
                        stall + d.fifo_stall_time(),
                        n + d.fifo_stalls(),
                    )
                });
        (
            ndp_bytes_moved,
            ndp_requests,
            fifo_high_watermark,
            fifo_stall_time,
            fifo_stalls,
        )
    }

    /// Per-unit utilization read off `timeline` (shared by both assembly
    /// paths; they differ only in which timeline they pass).
    fn unit_utilization(&self, timeline: &nearpm_sim::Timeline) -> Vec<((usize, usize), f64)> {
        let mut out = Vec::new();
        for dev in &self.devices {
            for unit in 0..dev.unit_count() {
                let resource = Resource::NdpUnit {
                    device: dev.id(),
                    unit,
                };
                out.push(((dev.id(), unit), timeline.utilization(resource)));
            }
        }
        out
    }

    fn build_report(&mut self) -> RunReport {
        let mut region_time = HashMap::new();
        let mut app_time = SimDuration::ZERO;
        let mut cc_time = SimDuration::ZERO;
        for r in Region::all() {
            let t = self.graph.region_work(r);
            if r.is_crash_consistency() {
                cc_time += t;
            } else {
                app_time += t;
            }
            region_time.insert(r.name(), t);
        }
        let makespan = self.graph.makespan();
        let timeline = self.graph.timeline();
        let cpu_ndp_overlap = timeline.overlap().total();
        let overlap_fraction = if makespan.is_zero() {
            0.0
        } else {
            cpu_ndp_overlap.ratio(makespan)
        };
        let ndp_unit_utilization = self.unit_utilization(timeline);
        let (ndp_bytes_moved, ndp_requests, fifo_high_watermark, fifo_stall_time, fifo_stalls) =
            self.device_report_fields();
        let report = RunReport {
            mode: self.config.mode,
            makespan,
            app_time,
            cc_time,
            region_time,
            cpu_ndp_overlap,
            overlap_fraction,
            ppo_violations: self.trace.check(),
            relaxed_persists: self.trace.relaxed_persist_count(),
            trace_events: self.trace.len(),
            ndp_bytes_moved,
            ndp_requests,
            pm_traffic: self.space.traffic(),
            ndp_unit_utilization,
            fifo_high_watermark,
            fifo_stall_time,
            fifo_stalls,
            request_latency: LatencySummary::from_histogram(&self.latency_hist),
        };
        if self.config.compact_trace {
            // Every report is a compaction point: the cached checker has
            // just folded the whole trace, so everything its parked state
            // can no longer reference is evicted into the sealed summary,
            // and the task graph's descriptive columns (never re-read by
            // this incremental report path) are truncated wholesale. The
            // report content is unaffected — totals come from
            // retired + live — so a compacting run's report stays
            // byte-equal to a non-compacting one's.
            self.trace.compact();
            let tasks = self.graph.len();
            self.graph.retire_tasks_before(tasks);
        }
        report
    }

    /// The retained O(n)-per-call recompute path: re-aggregates the whole
    /// task list into a fresh schedule/timeline
    /// (`nearpm_sim::schedule::oracle::aggregate`) and re-checks the whole
    /// trace against a freshly built index (`nearpm_ppo::check_all`).
    /// Differential tests assert the result equals [`NearPmSystem::report`]
    /// at every prefix of a run; the `report_smoke` gate and the
    /// `report_incremental` bench measure the incremental path against it.
    /// Unlike `report`, this does not advance any cached state.
    #[cfg(any(test, feature = "oracle"))]
    pub fn report_oracle(&self) -> RunReport {
        let schedule = nearpm_sim::schedule::oracle::aggregate(&self.graph);
        let mut region_time = HashMap::new();
        for r in Region::all() {
            region_time.insert(r.name(), schedule.region_time(r));
        }
        let ndp_unit_utilization = self.unit_utilization(schedule.timeline());
        let (ndp_bytes_moved, ndp_requests, fifo_high_watermark, fifo_stall_time, fifo_stalls) =
            self.device_report_fields();
        RunReport {
            mode: self.config.mode,
            makespan: schedule.makespan(),
            app_time: schedule.application_time(),
            cc_time: schedule.crash_consistency_time(),
            region_time,
            cpu_ndp_overlap: schedule.cpu_ndp_overlap(),
            overlap_fraction: schedule.overlap_fraction(),
            ppo_violations: nearpm_ppo::check_all(self.trace.trace()),
            relaxed_persists: nearpm_ppo::relaxed_persist_count(self.trace.trace()),
            trace_events: self.trace.len(),
            ndp_bytes_moved,
            ndp_requests,
            pm_traffic: self.space.traffic(),
            ndp_unit_utilization,
            fifo_high_watermark,
            fifo_stall_time,
            fifo_stalls,
            request_latency: LatencySummary::from_histogram(&self.latency_hist),
        }
    }

    /// Total in-flight access records across all devices (diagnostics; the
    /// commit-handle release tests assert this stays bounded over long
    /// runs).
    pub fn inflight_records(&self) -> usize {
        self.devices.iter().map(|d| d.inflight_len()).sum()
    }

    /// Highest modeled request-FIFO occupancy any device reached within the
    /// simulated-time window `[from, to)` — the per-window FIFO series the
    /// `fig_timeline` figure plots next to NDP utilization.
    pub fn fifo_occupancy_in(&self, from: SimTime, to: SimTime) -> usize {
        self.devices
            .iter()
            .map(|d| d.fifo_occupancy_in(from, to))
            .max()
            .unwrap_or(0)
    }

    /// Requests admitted into any device's request FIFO within the
    /// simulated-time window `[from, to)`, summed over devices — the
    /// per-window device arrival count the open-loop driver reports next to
    /// its latency series.
    pub fn fifo_admissions_in(&self, from: SimTime, to: SimTime) -> usize {
        self.devices
            .iter()
            .map(|d| d.fifo_admissions_in(from, to))
            .sum()
    }

    /// Number of PPO trace events recorded so far (diagnostics; lets
    /// sampling drivers pace themselves by event count without paying for a
    /// report).
    pub fn trace_events(&self) -> usize {
        self.trace.len()
    }

    /// Number of trace events still resident in the live vector (equals
    /// [`NearPmSystem::trace_events`] unless streaming compaction is on).
    pub fn resident_trace_events(&self) -> usize {
        self.trace.resident_events()
    }

    /// Number of trace events evicted by streaming compaction.
    pub fn retired_trace_events(&self) -> usize {
        self.trace.retired_events()
    }

    /// Number of tasks whose descriptive graph columns are still resident
    /// (equals [`NearPmSystem::task_count`] unless compaction is on).
    pub fn resident_tasks(&self) -> usize {
        self.graph.resident_tasks()
    }

    /// Number of tasks in the timing graph (diagnostics).
    pub fn task_count(&self) -> usize {
        self.graph.len()
    }

    /// Read-only access to the timing graph (diagnostics: per-resource busy
    /// time, bottleneck analysis of a finished run).
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(mode: ExecMode) -> SystemConfig {
        SystemConfig::for_mode(mode).with_capacity(4 << 20)
    }

    #[test]
    fn cpu_write_persist_survives_crash_unflushed_does_not() {
        let mut sys = NearPmSystem::new(small_config(ExecMode::CpuBaseline));
        let pool = sys.create_pool("p", 1 << 20).unwrap();
        let a = sys.alloc(pool, 64, 64).unwrap();
        let b = sys.alloc(pool, 64, 64).unwrap();
        sys.cpu_write_persist(0, a, &[1; 16], Region::AppPersist)
            .unwrap();
        sys.cpu_write(0, b, &[2; 16], Region::AppPersist).unwrap();
        sys.crash();
        assert!(sys.is_crashed());
        assert!(sys.cpu_read(0, a, 16, Region::Application).is_err());
        sys.begin_recovery().unwrap();
        assert_eq!(sys.persistent_read(a, 16).unwrap(), vec![1; 16]);
        assert_eq!(sys.persistent_read(b, 16).unwrap(), vec![0; 16]);
    }

    #[test]
    fn recovery_on_a_healthy_system_is_a_typed_error() {
        let mut sys = NearPmSystem::new(small_config(ExecMode::CpuBaseline));
        assert_eq!(sys.begin_recovery().unwrap_err(), SystemError::NotCrashed);
        // Mid-recovery re-entry is allowed (crash during recovery).
        sys.crash();
        sys.begin_recovery().unwrap();
        sys.begin_recovery().unwrap();
        sys.finish_recovery();
        assert_eq!(sys.begin_recovery().unwrap_err(), SystemError::NotCrashed);
    }

    #[test]
    fn operations_mid_crash_return_crashed_not_panic() {
        let mut sys = NearPmSystem::new(small_config(ExecMode::NearPmSd));
        let pool = sys.create_pool("p", 1 << 20).unwrap();
        let a = sys.alloc(pool, 4096, 4096).unwrap();
        sys.crash();
        assert_eq!(
            sys.cpu_write(0, a, &[1; 8], Region::AppPersist)
                .unwrap_err(),
            SystemError::Crashed
        );
        assert_eq!(
            sys.cpu_persist(0, a, 8, Region::AppPersist).unwrap_err(),
            SystemError::Crashed
        );
        assert_eq!(
            sys.cpu_copy(0, a, a.offset(2048), 64, Region::CcDataMovement)
                .unwrap_err(),
            SystemError::Crashed
        );
        assert_eq!(
            sys.offload(
                0,
                pool,
                NearPmOp::ShadowCopy {
                    src: a,
                    dst: a.offset(2048),
                    len: 64,
                },
                &[],
            )
            .unwrap_err(),
            SystemError::Crashed
        );
        assert_eq!(sys.cpu_compute(0, 1.0).unwrap_err(), SystemError::Crashed);
        // persistent_read intentionally works while crashed (recovery code
        // inspects the image before begin_recovery).
        assert!(sys.persistent_read(a, 8).is_ok());
    }

    #[test]
    fn crash_plan_fires_at_the_requested_persist() {
        let mut sys = NearPmSystem::new(small_config(ExecMode::CpuBaseline));
        let pool = sys.create_pool("p", 1 << 20).unwrap();
        let a = sys.alloc(pool, 4096, 64).unwrap();
        sys.arm_crash_plan(CrashPlan::at_persist(1));
        // Persist #0: survives. Persist #1: the crash fires after the full
        // effect applied, so the call itself still returns Ok.
        sys.cpu_write_persist(0, a, &[1; 8], Region::AppPersist)
            .unwrap();
        assert!(!sys.is_crashed());
        sys.cpu_write_persist(0, a.offset(64), &[2; 8], Region::AppPersist)
            .unwrap();
        assert!(sys.is_crashed());
        let plan = sys.disarm_crash_plan().unwrap();
        assert!(plan.fired());
        assert_eq!(plan.observed_of(BoundaryKind::Persist), 2);
        // Both persists hit the media before the crash.
        assert_eq!(sys.persistent_read(a, 8).unwrap(), vec![1; 8]);
        assert_eq!(sys.persistent_read(a.offset(64), 8).unwrap(), vec![2; 8]);
    }

    #[test]
    fn crash_drops_device_fifo_and_inflight_state() {
        let mut sys = NearPmSystem::new(
            SystemConfig::nearpm_sd()
                .with_capacity(4 << 20)
                .with_fifo_depth(2),
        );
        let pool = sys.create_pool("p", 1 << 20).unwrap();
        let log_area = sys.alloc(pool, 64 << 10, 4096).unwrap();
        sys.register_ndp_managed(AddrRange::new(log_area, 64 << 10));
        let obj = sys.alloc(pool, 4096, 64).unwrap();
        let txn = sys.next_txn_id();
        // Conflicting burst: backs the FIFO up and accumulates in-flight
        // records that are never released.
        for _ in 0..8u64 {
            sys.offload(
                0,
                pool,
                NearPmOp::UndoLogCreate {
                    src: obj,
                    len: 64,
                    log_meta: log_area,
                    log_data: log_area.offset(64),
                    txn_id: txn,
                },
                &[],
            )
            .unwrap();
        }
        assert!(sys.inflight_records() > 0);
        sys.crash();
        assert_eq!(
            sys.inflight_records(),
            0,
            "in-flight tables are volatile and must not survive a crash"
        );
        // Post-recovery accesses see no stale conflict dependencies.
        sys.begin_recovery().unwrap();
        sys.finish_recovery();
        sys.cpu_write_persist(0, obj, &[9; 8], Region::AppPersist)
            .unwrap();
        assert_eq!(sys.persistent_read(obj, 8).unwrap(), vec![9; 8]);
    }

    #[test]
    fn media_write_log_replay_matches_after_a_run() {
        let mut sys = NearPmSystem::new(small_config(ExecMode::NearPmSd));
        sys.enable_media_write_log();
        let pool = sys.create_pool("p", 1 << 20).unwrap();
        let obj = sys.alloc(pool, 4096, 64).unwrap();
        let log_area = sys.alloc(pool, 4096, 4096).unwrap();
        sys.register_ndp_managed(AddrRange::new(log_area, 4096));
        sys.cpu_write_persist(0, obj, &[7; 64], Region::AppPersist)
            .unwrap();
        let txn = sys.next_txn_id();
        sys.offload(
            0,
            pool,
            NearPmOp::UndoLogCreate {
                src: obj,
                len: 64,
                log_meta: log_area,
                log_data: log_area.offset(64),
                txn_id: txn,
            },
            &[],
        )
        .unwrap();
        sys.cpu_write_persist(0, obj, &[9; 64], Region::AppPersist)
            .unwrap();
        assert!(sys.media_write_log_len() > 0);
        assert!(sys.verify_write_log_replay());
    }

    #[test]
    fn baseline_offload_is_rejected() {
        let mut sys = NearPmSystem::new(small_config(ExecMode::CpuBaseline));
        let pool = sys.create_pool("p", 1 << 20).unwrap();
        let a = sys.alloc(pool, 64, 64).unwrap();
        let err = sys
            .offload(
                0,
                pool,
                NearPmOp::ShadowCopy {
                    src: a,
                    dst: a.offset(4096),
                    len: 64,
                },
                &[],
            )
            .unwrap_err();
        assert_eq!(err, SystemError::NoDevices);
    }

    #[test]
    fn offloaded_undo_log_produces_valid_ppo_trace() {
        let mut sys = NearPmSystem::new(small_config(ExecMode::NearPmSd));
        let pool = sys.create_pool("p", 1 << 20).unwrap();
        let obj = sys.alloc(pool, 64, 64).unwrap();
        let log_area = sys.alloc(pool, 4096, 4096).unwrap();
        sys.register_ndp_managed(AddrRange::new(log_area, 4096));

        // Initialize the object.
        sys.cpu_write_persist(0, obj, &[7; 64], Region::AppPersist)
            .unwrap();

        // Offload undo-log creation, then update in place.
        let txn = sys.next_txn_id();
        let handle = sys
            .offload(
                0,
                pool,
                NearPmOp::UndoLogCreate {
                    src: obj,
                    len: 64,
                    log_meta: log_area,
                    log_data: log_area.offset(64),
                    txn_id: txn,
                },
                &[],
            )
            .unwrap();
        sys.cpu_write_persist(0, obj, &[9; 64], Region::AppPersist)
            .unwrap();
        sys.release(&[&handle]);

        // Functional: the log holds the old value, the object the new one.
        assert_eq!(
            sys.persistent_read(log_area.offset(64), 64).unwrap(),
            vec![7; 64]
        );
        let report = sys.report();
        assert!(
            report.ppo_violations.is_empty(),
            "{:?}",
            report.ppo_violations
        );
        assert!(report.makespan > SimDuration::ZERO);
        assert_eq!(report.ndp_requests, 1);
        assert_eq!(report.ndp_bytes_moved, 64);
    }

    #[test]
    fn classification_uses_registered_ranges() {
        let mut sys = NearPmSystem::new(small_config(ExecMode::NearPmSd));
        let pool = sys.create_pool("p", 1 << 20).unwrap();
        let a = sys.alloc(pool, 4096, 4096).unwrap();
        assert_eq!(sys.classify(a, 64), Sharing::Shared);
        sys.register_ndp_managed(AddrRange::new(a, 4096));
        assert_eq!(sys.classify(a, 64), Sharing::NdpManaged);
        assert_eq!(sys.classify(a.offset(8192), 64), Sharing::Shared);
    }

    #[test]
    fn sw_sync_and_delayed_sync_order_after_offloads() {
        for mode in [ExecMode::NearPmMdSync, ExecMode::NearPmMd] {
            let mut sys = NearPmSystem::new(small_config(mode));
            let pool = sys.create_pool("p", 1 << 20).unwrap();
            let obj = sys.alloc(pool, 8192, 4096).unwrap();
            let log_area = sys.alloc(pool, 16384, 4096).unwrap();
            sys.register_ndp_managed(AddrRange::new(log_area, 16384));
            sys.cpu_write_persist(0, obj, &[3; 128], Region::AppPersist)
                .unwrap();

            let txn = sys.next_txn_id();
            let spans = sys.device_spans(obj, 8192).unwrap();
            assert!(spans.len() >= 2, "object should span both devices");
            let mut handles = Vec::new();
            for (i, (addr, len, _dev)) in spans.into_iter().enumerate() {
                let slot = log_area.offset(i as u64 * 8192);
                let h = sys
                    .offload(
                        0,
                        pool,
                        NearPmOp::UndoLogCreate {
                            src: addr,
                            len: len.min(4096),
                            log_meta: slot,
                            log_data: slot.offset(64),
                            txn_id: txn,
                        },
                        &[],
                    )
                    .unwrap();
                handles.push(h);
            }
            let refs: Vec<&OffloadHandle> = handles.iter().collect();
            let sync_task = if mode == ExecMode::NearPmMdSync {
                sys.sw_sync(0, &refs).unwrap()
            } else {
                sys.delayed_sync(&refs).unwrap()
            };
            sys.release(&refs);
            let report = sys.report();
            assert!(
                report.ppo_violations.is_empty(),
                "{:?}",
                report.ppo_violations
            );
            // The sync task exists in the graph.
            assert!(sync_task.index() < sys.task_count());
        }
    }

    /// A burst of offloads deeper than the FIFO must surface backpressure in
    /// the run report: the modeled occupancy saturates at the depth and the
    /// overflowing requests accumulate stall time.
    #[test]
    fn report_surfaces_fifo_backpressure_under_bursts() {
        let mut sys = NearPmSystem::new(
            SystemConfig::nearpm_sd()
                .with_capacity(4 << 20)
                .with_fifo_depth(2),
        );
        let pool = sys.create_pool("p", 1 << 20).unwrap();
        let log_area = sys.alloc(pool, 64 << 10, 4096).unwrap();
        sys.register_ndp_managed(AddrRange::new(log_area, 64 << 10));
        let obj = sys.alloc(pool, 4096, 64).unwrap();
        let txn = sys.next_txn_id();
        // Eight commands burst from the same thread into the SAME log slot:
        // the write-write conflicts chain each request's issue stage behind
        // the previous execution, so the front-end backs up into the FIFO
        // (depth 2) faster than the ~260 ns command-issue spacing drains it.
        for _ in 0..8u64 {
            sys.offload(
                0,
                pool,
                NearPmOp::UndoLogCreate {
                    src: obj,
                    len: 64,
                    log_meta: log_area,
                    log_data: log_area.offset(64),
                    txn_id: txn,
                },
                &[],
            )
            .unwrap();
        }
        let report = sys.report();
        assert_eq!(report.fifo_high_watermark, 2);
        assert!(report.fifo_stalls > 0);
        assert!(report.fifo_stall_time > SimDuration::ZERO);
        assert!(report.ppo_violations.is_empty());

        // The prototype's 32-deep FIFO absorbs the same burst without stalls.
        let mut easy = NearPmSystem::new(SystemConfig::nearpm_sd().with_capacity(4 << 20));
        let pool = easy.create_pool("p", 1 << 20).unwrap();
        let log_area = easy.alloc(pool, 64 << 10, 4096).unwrap();
        easy.register_ndp_managed(AddrRange::new(log_area, 64 << 10));
        let obj = easy.alloc(pool, 4096, 64).unwrap();
        let txn = easy.next_txn_id();
        for _ in 0..8u64 {
            easy.offload(
                0,
                pool,
                NearPmOp::UndoLogCreate {
                    src: obj,
                    len: 64,
                    log_meta: log_area,
                    log_data: log_area.offset(64),
                    txn_id: txn,
                },
                &[],
            )
            .unwrap();
        }
        let easy_report = easy.report();
        assert_eq!(easy_report.fifo_stalls, 0);
        assert!(easy_report.fifo_high_watermark <= 8);
    }

    /// Backpressure must reach the host: when a thread's command finds the
    /// request FIFO full, the thread's next CPU task may start only after
    /// the front-end stage that frees the slot retires. With a deep FIFO the
    /// same program's trailing CPU task starts strictly earlier.
    #[test]
    fn full_fifo_blocks_the_posting_thread() {
        let run = |depth: usize| {
            let mut sys = NearPmSystem::new(
                SystemConfig::nearpm_sd()
                    .with_capacity(4 << 20)
                    .with_fifo_depth(depth),
            );
            let pool = sys.create_pool("p", 1 << 20).unwrap();
            let log_area = sys.alloc(pool, 64 << 10, 4096).unwrap();
            sys.register_ndp_managed(AddrRange::new(log_area, 64 << 10));
            let obj = sys.alloc(pool, 4096, 64).unwrap();
            let txn = sys.next_txn_id();
            // Conflicting burst into one slot: each request's issue stage
            // chains behind the previous execution, backing up the FIFO.
            for _ in 0..8u64 {
                sys.offload(
                    0,
                    pool,
                    NearPmOp::UndoLogCreate {
                        src: obj,
                        len: 64,
                        log_meta: log_area,
                        log_data: log_area.offset(64),
                        txn_id: txn,
                    },
                    &[],
                )
                .unwrap();
            }
            let after = sys.cpu_compute(0, 10.0).unwrap();
            let start = sys.graph().task_start(after);
            (sys.report(), start)
        };
        let (shallow_report, shallow_start) = run(2);
        let (deep_report, deep_start) = run(32);
        assert!(shallow_report.fifo_stalls > 0);
        assert_eq!(deep_report.fifo_stalls, 0);
        assert!(
            shallow_start > deep_start,
            "the stalled thread's next task must start later \
             ({shallow_start} vs {deep_start})"
        );
        assert!(shallow_report.ppo_violations.is_empty());
    }

    #[test]
    fn report_region_accounting() {
        let mut sys = NearPmSystem::new(small_config(ExecMode::CpuBaseline));
        let pool = sys.create_pool("p", 1 << 20).unwrap();
        let a = sys.alloc(pool, 4096, 4096).unwrap();
        let b = sys.alloc(pool, 4096, 4096).unwrap();
        sys.cpu_compute(0, 1000.0).unwrap();
        sys.cpu_copy(0, a, b, 4096, Region::CcDataMovement).unwrap();
        let report = sys.report();
        assert!(report.cc_time > SimDuration::ZERO);
        assert!(report.app_time > SimDuration::ZERO);
        assert!(report.cc_fraction() > 0.0 && report.cc_fraction() < 1.0);
        assert!(report.region_time["data-movement"] > SimDuration::ZERO);
        assert_eq!(report.mode, ExecMode::CpuBaseline);
    }

    #[test]
    fn speedup_helpers() {
        let mut base = NearPmSystem::new(small_config(ExecMode::CpuBaseline));
        let pool = base.create_pool("p", 1 << 20).unwrap();
        let a = base.alloc(pool, 4096, 4096).unwrap();
        let b = base.alloc(pool, 4096, 4096).unwrap();
        base.cpu_copy(0, a, b, 4096, Region::CcDataMovement)
            .unwrap();
        let base_report = base.report();
        assert!((base_report.speedup_over(&base_report) - 1.0).abs() < 1e-9);
        assert!((base_report.cc_speedup_over(&base_report) - 1.0).abs() < 1e-9);
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("nearpm-sys-test-{}-{tag}", std::process::id()))
    }

    #[test]
    fn manifest_parses_and_rejects_garbage() {
        let m = MediaManifest::parse(
            "nearpm-media-manifest v1\ncapacity 100\ndevices 2\ngranularity 4096\n",
        )
        .unwrap();
        assert_eq!(
            m,
            MediaManifest {
                capacity: 100,
                devices: 2,
                granularity: 4096,
                // Pre-epoch manifests read back as epoch 0.
                epoch: 0
            }
        );
        let m = MediaManifest::parse(
            "nearpm-media-manifest v1\ncapacity 100\ndevices 2\ngranularity 4096\nepoch 7\n",
        )
        .unwrap();
        assert_eq!(m.epoch, 7);
        assert!(MediaManifest::parse("not a manifest").is_err());
        assert!(MediaManifest::parse("nearpm-media-manifest v1\ncapacity 100\n").is_err());
        assert!(MediaManifest::parse(
            "nearpm-media-manifest v1\ncapacity x\ndevices 2\ngranularity 4096"
        )
        .is_err());
    }

    #[test]
    fn persist_and_reopen_restores_the_image_as_crashed() {
        let dir = temp_dir("persist");
        let cfg = small_config(ExecMode::NearPmMd);
        let mut sys = NearPmSystem::new(cfg.clone());
        let pool = sys.create_pool("p", 1 << 20).unwrap();
        let a = sys.alloc(pool, 4096, 64).unwrap();
        sys.cpu_write_persist(0, a, &[7; 128], Region::AppPersist)
            .unwrap();
        sys.persist_to(&dir).unwrap();
        let images: Vec<_> = (0..sys.media_count())
            .map(|d| sys.device_image(d))
            .collect();
        drop(sys);

        let mut reopened = NearPmSystem::reopen_from(cfg.clone(), &dir).unwrap();
        assert_eq!(reopened.media_kind(), nearpm_pm::MediaKind::File);
        // The reopened system starts crashed, with the image intact.
        assert!(reopened.is_crashed());
        for (d, img) in images.iter().enumerate() {
            assert_eq!(&reopened.device_image(d), img, "device {d}");
        }
        // The recovery protocol works exactly as after an in-process crash.
        reopened.create_pool("p", 1 << 20).unwrap();
        assert_eq!(reopened.persistent_read(a, 128).unwrap(), vec![7; 128]);
        reopened.begin_recovery().unwrap();
        reopened.finish_recovery();
        drop(reopened);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_epoch_round_trips_through_the_manifest() {
        let dir = temp_dir("epoch");
        let cfg = small_config(ExecMode::NearPmMd);
        let mut sys = NearPmSystem::new(cfg.clone());
        assert_eq!(sys.checkpoint_epoch(), 0);
        sys.persist_to(&dir).unwrap();
        // Epoch advances rewrite the on-disk manifest in place (atomically),
        // so a reattaching process reads the epoch back without replay.
        sys.set_checkpoint_epoch(3).unwrap();
        drop(sys);
        let reopened = NearPmSystem::reopen_from(cfg.clone(), &dir).unwrap();
        assert_eq!(reopened.checkpoint_epoch(), 3);
        // No stray temp file is left behind by the rename protocol.
        assert!(!dir.join(format!("{MANIFEST_NAME}.tmp")).exists());
        drop(reopened);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_rejects_geometry_mismatch_and_missing_manifest() {
        let dir = temp_dir("mismatch");
        let cfg = small_config(ExecMode::NearPmMd);
        let missing = NearPmSystem::reopen_from(cfg.clone(), &dir).unwrap_err();
        assert!(matches!(missing, SystemError::Media { .. }), "{missing}");
        let mut sys = NearPmSystem::new(cfg.clone());
        sys.persist_to(&dir).unwrap();
        let err = NearPmSystem::reopen_from(cfg.clone().with_capacity(8 << 20), &dir).unwrap_err();
        match err {
            SystemError::Media { message } => {
                assert!(message.contains("geometry mismatch"), "{message}")
            }
            other => panic!("unexpected error {other:?}"),
        }
        drop(sys);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_backed_system_is_durable_without_persist_to() {
        // A file-backed run's media writes land in the files as they happen;
        // persist_to only adds the manifest. This is the property the
        // kill-at-boundary restart harness relies on.
        let dir = temp_dir("durable");
        let cfg =
            small_config(ExecMode::NearPmSd).with_media(MediaConfig::File { dir: dir.clone() });
        let mut sys = NearPmSystem::new(cfg.clone());
        let pool = sys.create_pool("p", 1 << 20).unwrap();
        let a = sys.alloc(pool, 4096, 64).unwrap();
        sys.cpu_write_persist(0, a, &[0xCD; 64], Region::AppPersist)
            .unwrap();
        sys.persist_to(&dir).unwrap();
        let phys_image = sys.device_image(0);
        drop(sys); // no clean shutdown of the media beyond the manifest

        let reopened = NearPmSystem::reopen_from(cfg, &dir).unwrap();
        assert_eq!(reopened.device_image(0), phys_image);
        drop(reopened);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn try_new_surfaces_backend_failures() {
        // A file path that cannot be created (parent is a file, not a dir).
        let bogus = temp_dir("not-a-dir-file");
        std::fs::write(&bogus, b"x").unwrap();
        let cfg = small_config(ExecMode::CpuBaseline).with_media(MediaConfig::File {
            dir: bogus.join("sub"),
        });
        let err = NearPmSystem::try_new(cfg).unwrap_err();
        assert!(matches!(err, SystemError::Media { .. }), "{err}");
        std::fs::remove_file(&bogus).unwrap();
    }

    #[test]
    fn media_accessors_report_backend_state() {
        let mut sys =
            NearPmSystem::new(small_config(ExecMode::NearPmMd).with_media(MediaConfig::Sparse));
        assert_eq!(sys.media_kind(), nearpm_pm::MediaKind::Sparse);
        assert_eq!(sys.media_resident_bytes(), 0);
        let pool = sys.create_pool("p", 1 << 20).unwrap();
        let a = sys.alloc(pool, 4096, 64).unwrap();
        sys.cpu_write_persist(0, a, &[1; 64], Region::AppPersist)
            .unwrap();
        assert!(sys.media_resident_bytes() > 0);
        sys.sync_media().unwrap();
    }
}
