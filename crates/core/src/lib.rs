//! # nearpm-core — the NearPM system
//!
//! Public API of the NearPM reproduction: a simulated machine that couples an
//! emulated persistent memory (`nearpm-pm`), one or more NearPM devices
//! (`nearpm-device`), a CPU execution model, and a PPO trace (`nearpm-ppo`),
//! all timed through the task-graph scheduler of `nearpm-sim`.
//!
//! The central type is [`NearPmSystem`]. Programs (the crash-consistency
//! mechanisms in `nearpm-cc`, the key-value stores in `nearpm-kv`, and the
//! evaluation workloads in `nearpm-workloads`) issue CPU reads/writes/persist
//! barriers and offload crash-consistency primitives; the system returns a
//! [`RunReport`] with the end-to-end time, the crash-consistency breakdown,
//! CPU/NDP overlap, and the PPO-violation check of the recorded trace.
//!
//! ```
//! use nearpm_core::{ExecMode, NearPmSystem, SystemConfig};
//! use nearpm_sim::Region;
//!
//! let mut sys = NearPmSystem::new(SystemConfig::baseline().with_capacity(1 << 20));
//! let pool = sys.create_pool("quickstart", 64 * 1024).unwrap();
//! let obj = sys.alloc(pool, 64, 64).unwrap();
//! sys.cpu_write_persist(0, obj, b"hello", Region::AppPersist).unwrap();
//! let report = sys.report();
//! assert!(report.ppo_violations.is_empty());
//! assert_eq!(report.mode, ExecMode::CpuBaseline);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod config;
pub mod crashplan;
pub mod error;
pub mod system;
pub mod trace;

pub use batch::OffloadBatch;
pub use config::{ExecMode, SystemConfig};
pub use crashplan::{BoundaryKind, CrashPlan};
pub use error::{Result, SystemError};
pub use system::{LatencySummary, NearPmSystem, OffloadHandle, RunReport, MANIFEST_NAME};
pub use trace::TraceBuilder;

// Re-export the types callers need to drive the system.
pub use nearpm_device::{DispatchPolicy, NearPmOp, ThreadId};
pub use nearpm_pm::{AddrRange, MediaConfig, MediaKind, PhysAddr, PoolId, VirtAddr};
pub use nearpm_ppo::Sharing;
pub use nearpm_sim::{LatencyModel, Region, SimDuration};
