//! Split-phase (post-all / complete-later) offload groups.
//!
//! A crash-consistency transaction typically issues several independent
//! NearPM primitives per phase — one undo-log creation per logged range, one
//! shadow copy per touched page — and only *then* needs a completion point
//! (the mode-specific commit synchronization). [`OffloadBatch`] is the
//! handle-group that makes this split-phase structure explicit: every
//! offload of a phase is posted into the batch **before the first
//! dependency or wait is materialized**, and the synchronization primitives
//! ([`NearPmSystem::wait_for_batch`], [`NearPmSystem::sw_sync_batch`],
//! [`NearPmSystem::delayed_sync_batch`]) take the whole group at once.
//!
//! The batch is purely a host-side grouping: each posted command still
//! crosses the control path individually (one posted MMIO write per
//! command), so the device-side task structure of a batch of N offloads is
//! identical to N individually posted offloads. What the group changes is
//! the *shape of the transaction code built on it*: mechanisms stop
//! interleaving offload posting with CPU bookkeeping and waits, so all of a
//! phase's device work is in flight together and overlaps across units and
//! devices.

use crate::system::OffloadHandle;

/// A group of in-flight offloaded procedures, posted together in one
/// split-phase transaction phase and synchronized/released as a unit.
#[derive(Debug, Default)]
pub struct OffloadBatch {
    handles: Vec<OffloadHandle>,
}

impl OffloadBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        OffloadBatch {
            handles: Vec::new(),
        }
    }

    /// Creates an empty batch with room for `n` handles.
    pub fn with_capacity(n: usize) -> Self {
        OffloadBatch {
            handles: Vec::with_capacity(n),
        }
    }

    /// Adds an in-flight offload to the group.
    pub fn push(&mut self, handle: OffloadHandle) {
        self.handles.push(handle);
    }

    /// Number of offloads in the group.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// True if no offloads have been posted into the group.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// The grouped handles, in posting order.
    pub fn handles(&self) -> &[OffloadHandle] {
        &self.handles
    }

    /// Borrowed view of the group as the slice-of-references shape the
    /// slice-based synchronization primitives take.
    pub fn refs(&self) -> Vec<&OffloadHandle> {
        self.handles.iter().collect()
    }

    /// The devices the group's offloads executed on, sorted and deduplicated.
    pub fn devices(&self) -> Vec<usize> {
        let mut d: Vec<usize> = self.handles.iter().map(|h| h.device).collect();
        d.sort_unstable();
        d.dedup();
        d
    }

    /// Total payload bytes moved by the group's offloads.
    pub fn bytes(&self) -> u64 {
        self.handles.iter().map(|h| h.bytes).sum()
    }

    /// Retains only the handles `keep` approves of, dropping the rest (the
    /// retired-release path walks the group and keeps what is still in
    /// flight).
    pub fn retain(&mut self, keep: impl FnMut(&OffloadHandle) -> bool) {
        self.handles.retain(keep);
    }

    /// Forgets the grouped handles (after the owning transaction released
    /// them), leaving the batch ready for the next phase.
    pub fn clear(&mut self) {
        self.handles.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExecMode, NearPmSystem, SystemConfig};
    use nearpm_device::NearPmOp;
    use nearpm_pm::AddrRange;
    use nearpm_sim::Region;

    #[test]
    fn batch_groups_posted_offloads_by_device() {
        let mut sys =
            NearPmSystem::new(SystemConfig::for_mode(ExecMode::NearPmMd).with_capacity(8 << 20));
        let pool = sys.create_pool("p", 4 << 20).unwrap();
        let obj = sys.alloc(pool, 8192, 4096).unwrap();
        let log_area = sys.alloc(pool, 32768, 4096).unwrap();
        sys.register_ndp_managed(AddrRange::new(log_area, 32768));
        sys.cpu_write_persist(0, obj, &[1; 128], Region::AppPersist)
            .unwrap();

        let mut batch = OffloadBatch::with_capacity(2);
        assert!(batch.is_empty());
        let txn = sys.next_txn_id();
        // The 8 kB object spans both interleaved devices; one log create per
        // device-local span lands the batch on both devices.
        for (i, (addr, len, _dev)) in sys.device_spans(obj, 8192).unwrap().into_iter().enumerate() {
            let slot = log_area.offset(i as u64 * 4096);
            sys.offload_into(
                &mut batch,
                0,
                pool,
                NearPmOp::UndoLogCreate {
                    src: addr,
                    len: len.min(2048),
                    log_meta: slot,
                    log_data: slot.offset(64),
                    txn_id: txn,
                },
                &[],
            )
            .unwrap();
        }
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.devices(), vec![0, 1]);
        assert_eq!(batch.bytes(), 4096);
        assert_eq!(batch.refs().len(), 2);

        // The whole group synchronizes and releases as a unit.
        let barrier = sys.delayed_sync_batch(&batch).unwrap();
        assert!(barrier.is_some());
        sys.release_batch(&mut batch);
        assert!(batch.is_empty());
        let report = sys.report();
        assert!(report.ppo_violations.is_empty());
        assert_eq!(report.ndp_requests, 2);
    }

    #[test]
    fn empty_batch_sync_is_a_no_op() {
        let mut sys =
            NearPmSystem::new(SystemConfig::for_mode(ExecMode::NearPmMd).with_capacity(4 << 20));
        let batch = OffloadBatch::new();
        assert_eq!(sys.wait_for_batch(0, &batch).unwrap(), None);
        assert_eq!(sys.sw_sync_batch(0, &batch).unwrap(), None);
        assert_eq!(sys.delayed_sync_batch(&batch).unwrap(), None);
        assert_eq!(
            sys.task_count(),
            0,
            "no task may be added for an empty group"
        );
    }
}
