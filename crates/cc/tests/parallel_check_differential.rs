//! System-level differential gate for parallel PPO checking.
//!
//! The ppo crate already proves `check_all_parallel == check_all == oracle`
//! on randomized adversarial traces; this test closes the loop at the other
//! end of the stack: the traces the four crash-consistency mechanisms
//! (undo logging, redo logging, checkpointing, shadow paging) actually
//! produce through the full `NearPmSystem` — in every execution mode, from
//! the serial CPU baseline to the pipelined NearPM MD front-end, including
//! a crash/recovery segment — must yield **identical violation lists** from
//! the serial indexed checker, the scoped-thread-pool parallel checker at
//! several worker counts (including the degenerate 1), and the naive
//! rescanning oracle. The report's incrementally maintained
//! `relaxed_persists` column is held to the same standard.

use nearpm_cc::{Checkpoint, RedoLog, ShadowPaging, UndoLog};
use nearpm_core::{ExecMode, NearPmSystem, PoolId, Region, SystemConfig, VirtAddr};
use nearpm_ppo::invariants::oracle;
use nearpm_ppo::{check_all, check_all_parallel, relaxed_persist_count, Trace};

const WORKERS: [usize; 3] = [1, 2, 4];

fn setup(mode: ExecMode) -> (NearPmSystem, PoolId) {
    let mut sys = NearPmSystem::new(SystemConfig::for_mode(mode).with_capacity(32 << 20));
    let pool = sys.create_pool("par-diff", 16 << 20).unwrap();
    (sys, pool)
}

/// Asserts the three checker implementations agree on `trace` and that the
/// system's incremental relaxed-persist column matches the rescanning
/// answers.
fn assert_checkers_agree(trace: &Trace, relaxed_from_report: usize, context: &str) {
    let serial = check_all(trace);
    let naive = oracle::check_all(trace);
    assert_eq!(serial, naive, "serial vs oracle diverged: {context}");
    for workers in WORKERS {
        assert_eq!(
            check_all_parallel(trace, workers),
            serial,
            "parallel ({workers} workers) vs serial diverged: {context}"
        );
    }
    let relaxed = relaxed_persist_count(trace);
    assert_eq!(
        relaxed_from_report, relaxed,
        "report's incremental relaxed_persists vs indexed rescan: {context}"
    );
    assert_eq!(
        relaxed,
        oracle::relaxed_persist_count(trace),
        "indexed vs oracle relaxed_persist_count: {context}"
    );
}

fn obj(sys: &mut NearPmSystem, pool: PoolId) -> VirtAddr {
    let addr = sys.alloc(pool, 8192, 4096).unwrap();
    sys.cpu_write_persist(0, addr, &vec![0xAB; 8192], Region::AppPersist)
        .unwrap();
    addr
}

#[test]
fn undo_log_traces_check_identically_in_all_modes() {
    for mode in ExecMode::all() {
        let (mut sys, pool) = setup(mode);
        let addr = obj(&mut sys, pool);
        let mut undo = UndoLog::new(&mut sys, pool, 0, 8).unwrap();
        // A committed transaction, then one interrupted by a crash and
        // recovered — recovery reads exercise invariant 4.
        undo.begin(&mut sys).unwrap();
        undo.log_range(&mut sys, addr, 128).unwrap();
        undo.update(&mut sys, addr, &[0x11; 128]).unwrap();
        undo.commit(&mut sys).unwrap();
        undo.begin(&mut sys).unwrap();
        undo.log_range(&mut sys, addr.offset(4096), 128).unwrap();
        undo.update(&mut sys, addr.offset(4096), &[0x22; 128])
            .unwrap();
        sys.crash();
        undo.recover(&mut sys).unwrap();
        let (report, trace) = sys.report_with_trace();
        assert!(report.ppo_violations.is_empty(), "{mode:?}");
        assert_checkers_agree(&trace, report.relaxed_persists, &format!("undo {mode:?}"));
    }
}

#[test]
fn redo_log_traces_check_identically_in_all_modes() {
    for mode in ExecMode::all() {
        let (mut sys, pool) = setup(mode);
        let addr = obj(&mut sys, pool);
        let mut redo = RedoLog::new(&mut sys, pool, 0, 8).unwrap();
        redo.begin(&mut sys).unwrap();
        redo.stage(&mut sys, addr, &[0x42; 64]).unwrap();
        // A second staged range on a far offset lands on the other device
        // in MD modes, forcing cross-device synchronization (invariant 3).
        redo.stage(&mut sys, addr.offset(4096), &[0x43; 64])
            .unwrap();
        redo.commit(&mut sys).unwrap();
        let (report, trace) = sys.report_with_trace();
        assert!(report.ppo_violations.is_empty(), "{mode:?}");
        assert_checkers_agree(&trace, report.relaxed_persists, &format!("redo {mode:?}"));
    }
}

#[test]
fn checkpoint_traces_check_identically_in_all_modes() {
    for mode in ExecMode::all() {
        let (mut sys, pool) = setup(mode);
        let data = sys
            .alloc(pool, 2 * nearpm_sim::PM_PAGE, nearpm_sim::PM_PAGE)
            .unwrap();
        sys.cpu_write_persist(0, data, &vec![1u8; 256], Region::AppPersist)
            .unwrap();
        let mut ckpt = Checkpoint::new(&mut sys, pool, 0, 8).unwrap();
        ckpt.touch(&mut sys, data).unwrap();
        ckpt.update(&mut sys, data, &[2u8; 128]).unwrap();
        ckpt.advance_epoch(&mut sys).unwrap();
        ckpt.touch(&mut sys, data).unwrap();
        ckpt.update(&mut sys, data, &[3u8; 128]).unwrap();
        sys.crash();
        ckpt.recover(&mut sys).unwrap();
        let (report, trace) = sys.report_with_trace();
        assert!(report.ppo_violations.is_empty(), "{mode:?}");
        assert_checkers_agree(&trace, report.relaxed_persists, &format!("ckpt {mode:?}"));
    }
}

#[test]
fn shadow_paging_traces_check_identically_in_all_modes() {
    for mode in ExecMode::all() {
        let (mut sys, pool) = setup(mode);
        let mut shadow = ShadowPaging::new(&mut sys, pool, 0, 4, 8).unwrap();
        let p2 = shadow.page_addr(&mut sys, 2).unwrap();
        sys.cpu_write_persist(0, p2, &vec![5u8; 256], Region::AppPersist)
            .unwrap();
        shadow.update(&mut sys, 2, 64, &[9u8; 32]).unwrap();
        shadow.update(&mut sys, 1, 0, &[7u8; 16]).unwrap();
        let (report, trace) = sys.report_with_trace();
        assert!(report.ppo_violations.is_empty(), "{mode:?}");
        assert_checkers_agree(&trace, report.relaxed_persists, &format!("shadow {mode:?}"));
    }
}
