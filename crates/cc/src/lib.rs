//! # nearpm-cc — crash-consistency mechanisms
//!
//! The three crash-consistency mechanism families the paper evaluates, each
//! with a CPU-baseline implementation and a NearPM-offloaded implementation
//! selected by the system's [`ExecMode`](nearpm_core::ExecMode):
//!
//! | Mechanism | Type | Primitive operations (Table 1) |
//! |---|---|---|
//! | [`UndoLog`] | logging (undo) | allocate, generate metadata, copy data, delete log, commit |
//! | [`RedoLog`] | logging (redo) | allocate, generate metadata, copy data, delete log, commit |
//! | [`Checkpoint`] | checkpointing | allocate, generate metadata, copy data |
//! | [`ShadowPaging`] | shadow paging | allocate, copy data, switch page |
//!
//! All mechanisms draw their recovery data (logs, snapshots, shadow pages)
//! from a per-pool [`LogArena`] whose ranges are registered as NDP-managed,
//! so the relaxed half of Partitioned Persist Ordering applies to them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod logging;
pub mod pages;

pub use arena::{LogArena, LogSlot, HEADER_SLOT};
pub use logging::{RedoLog, UndoLog, MAX_LOG_CHUNK};
pub use pages::{Checkpoint, ShadowPaging};

/// The three crash-consistency mechanism families of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mechanism {
    /// Undo/redo logging (each workload's original support).
    Logging,
    /// Page-granular checkpointing.
    Checkpointing,
    /// Shadow paging.
    ShadowPaging,
}

impl Mechanism {
    /// All mechanisms in report order.
    pub fn all() -> [Mechanism; 3] {
        [
            Mechanism::Logging,
            Mechanism::Checkpointing,
            Mechanism::ShadowPaging,
        ]
    }

    /// Label used in figures and tables.
    pub fn label(self) -> &'static str {
        match self {
            Mechanism::Logging => "Logging",
            Mechanism::Checkpointing => "Checkpointing",
            Mechanism::ShadowPaging => "Shadow paging",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mechanism_labels() {
        assert_eq!(Mechanism::all().len(), 3);
        for m in Mechanism::all() {
            assert!(!m.label().is_empty());
        }
    }
}
