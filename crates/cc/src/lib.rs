//! # nearpm-cc — crash-consistency mechanisms
//!
//! The three crash-consistency mechanism families the paper evaluates, each
//! with a CPU-baseline implementation and a NearPM-offloaded implementation
//! selected by the system's [`ExecMode`](nearpm_core::ExecMode):
//!
//! | Mechanism | Type | Primitive operations (Table 1) |
//! |---|---|---|
//! | [`UndoLog`] | logging (undo) | allocate, generate metadata, copy data, delete log, commit |
//! | [`RedoLog`] | logging (redo) | allocate, generate metadata, copy data, delete log, commit |
//! | [`Checkpoint`] | checkpointing | allocate, generate metadata, copy data |
//! | [`ShadowPaging`] | shadow paging | allocate, copy data, switch page |
//!
//! All mechanisms draw their recovery data (logs, snapshots, shadow pages)
//! from a per-pool [`LogArena`] whose ranges are registered as NDP-managed,
//! so the relaxed half of Partitioned Persist Ordering applies to them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod logging;
pub mod pages;

pub use arena::{LogArena, LogSlot, HEADER_SLOT};
pub use logging::{RedoLog, UndoLog, MAX_LOG_CHUNK};
pub use pages::{Checkpoint, ShadowPaging};

/// The crash-consistency mechanism families of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mechanism {
    /// Undo logging (each workload's original support).
    Logging,
    /// Page-granular checkpointing.
    Checkpointing,
    /// Shadow paging.
    ShadowPaging,
    /// Redo logging (stage-to-log then apply-on-commit; the fourth
    /// mechanism of Table 1, exercised by the open-loop sweeps).
    RedoLogging,
}

impl Mechanism {
    /// The three mechanism families of the paper's closed-loop figures, in
    /// report order (redo logging is excluded to keep those figures stable;
    /// use [`Mechanism::all_extended`] for all four).
    pub fn all() -> [Mechanism; 3] {
        [
            Mechanism::Logging,
            Mechanism::Checkpointing,
            Mechanism::ShadowPaging,
        ]
    }

    /// All four mechanism implementations, in report order — the sweep set
    /// of the open-loop figures.
    pub fn all_extended() -> [Mechanism; 4] {
        [
            Mechanism::Logging,
            Mechanism::Checkpointing,
            Mechanism::ShadowPaging,
            Mechanism::RedoLogging,
        ]
    }

    /// Label used in figures and tables.
    pub fn label(self) -> &'static str {
        match self {
            Mechanism::Logging => "Logging",
            Mechanism::Checkpointing => "Checkpointing",
            Mechanism::ShadowPaging => "Shadow paging",
            Mechanism::RedoLogging => "Redo logging",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mechanism_labels() {
        assert_eq!(Mechanism::all().len(), 3);
        assert_eq!(Mechanism::all_extended().len(), 4);
        // The extended set is the closed-loop set plus redo logging.
        assert_eq!(Mechanism::all_extended()[..3], Mechanism::all());
        assert_eq!(Mechanism::all_extended()[3], Mechanism::RedoLogging);
        for m in Mechanism::all_extended() {
            assert!(!m.label().is_empty());
        }
    }
}
