//! NDP-managed log arena.
//!
//! Logs, checkpoints, and shadow pages live in PM regions that only the crash
//! consistency machinery (CPU-baseline or NearPM) touches; the application
//! never reads them outside recovery. The arena reserves such regions per
//! device — a slot's header and data always live on the same device as each
//! other — registers them as NDP-managed with the system (so PPO applies the
//! relaxed persist ordering), and hands out / recycles fixed-size slots.

use nearpm_core::{AddrRange, NearPmSystem, PoolId, Result, SystemError, VirtAddr};
use nearpm_sim::PM_PAGE;

/// Size of one header slot in the arena (the 40-byte header rounded up to a
/// cache line).
pub const HEADER_SLOT: u64 = 64;

/// One acquired log/checkpoint slot: a header line plus a data page, both on
/// the same device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogSlot {
    /// Address of the entry header.
    pub meta: VirtAddr,
    /// Address of the data area (one 4 kB page).
    pub data: VirtAddr,
    /// Device the slot lives on.
    pub device: usize,
}

/// Per-pool arena of NDP-managed slots.
#[derive(Debug, Clone)]
pub struct LogArena {
    pool: PoolId,
    /// Free slots per device (header and data pre-paired).
    free: Vec<Vec<LogSlot>>,
    /// Every slot ever created (scanned by recovery).
    all_slots: Vec<(VirtAddr, VirtAddr, usize)>,
}

impl LogArena {
    /// Reserves an arena with `pages_per_device` data pages (plus header
    /// space) on each device, registering every reserved range as
    /// NDP-managed.
    pub fn new(sys: &mut NearPmSystem, pool: PoolId, pages_per_device: usize) -> Result<Self> {
        let devices = sys.device_count().max(1);
        let mut data_pages: Vec<Vec<VirtAddr>> = vec![Vec::new(); devices];
        let mut header_pages: Vec<Vec<VirtAddr>> = vec![Vec::new(); devices];

        // Header pages: each 4 kB page yields 64 header slots.
        let header_pages_needed = pages_per_device.div_ceil((PM_PAGE / HEADER_SLOT) as usize);
        let mut guard = 0;
        while header_pages.iter().any(|v| v.len() < header_pages_needed)
            || data_pages.iter().any(|v| v.len() < pages_per_device)
        {
            guard += 1;
            if guard > devices * (header_pages_needed + pages_per_device) * 4 + 64 {
                return Err(SystemError::LogArenaFull { pool });
            }
            let page = sys.alloc(pool, PM_PAGE, PM_PAGE)?;
            let dev = sys.device_of(page)?.min(devices - 1);
            sys.register_ndp_managed(AddrRange::new(page, PM_PAGE));
            if header_pages[dev].len() < header_pages_needed {
                header_pages[dev].push(page);
            } else {
                data_pages[dev].push(page);
            }
        }

        // Pre-pair header slot i with data page i on each device; the pairing
        // is fixed for the lifetime of the arena so recovery can scan it.
        let mut free: Vec<Vec<LogSlot>> = vec![Vec::new(); devices];
        let mut all_slots = Vec::new();
        for dev in 0..devices {
            let mut header_slots = header_pages[dev].iter().flat_map(|page| {
                (0..(PM_PAGE / HEADER_SLOT)).map(move |i| page.offset(i * HEADER_SLOT))
            });
            for data in &data_pages[dev] {
                let meta = header_slots.next().expect("enough header slots");
                let slot = LogSlot {
                    meta,
                    data: *data,
                    device: dev,
                };
                free[dev].push(slot);
                all_slots.push((meta, *data, dev));
            }
        }
        Ok(LogArena {
            pool,
            free,
            all_slots,
        })
    }

    /// The pool the arena belongs to.
    pub fn pool(&self) -> PoolId {
        self.pool
    }

    /// Acquires a slot on `device` (clamped to the available devices).
    pub fn acquire(&mut self, device: usize) -> Result<LogSlot> {
        let dev = device.min(self.free.len() - 1);
        self.free[dev]
            .pop()
            .ok_or(SystemError::LogArenaFull { pool: self.pool })
    }

    /// Returns a slot to the free lists.
    pub fn release(&mut self, slot: LogSlot) {
        self.free[slot.device].push(slot);
    }

    /// Free slots remaining on `device`.
    pub fn free_slots(&self, device: usize) -> usize {
        let dev = device.min(self.free.len() - 1);
        self.free[dev].len()
    }

    /// Every (header, data, device) pairing the arena has ever created; the
    /// recovery procedures scan this list for valid entries.
    pub fn scan_list(&self) -> &[(VirtAddr, VirtAddr, usize)] {
        &self.all_slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nearpm_core::{ExecMode, SystemConfig};

    fn system(mode: ExecMode) -> (NearPmSystem, PoolId) {
        let mut sys = NearPmSystem::new(SystemConfig::for_mode(mode).with_capacity(8 << 20));
        let pool = sys.create_pool("arena-test", 4 << 20).unwrap();
        (sys, pool)
    }

    #[test]
    fn arena_slots_are_ndp_managed_and_on_the_right_device() {
        let (mut sys, pool) = system(ExecMode::NearPmMd);
        let mut arena = LogArena::new(&mut sys, pool, 8).unwrap();
        for dev in 0..sys.device_count() {
            assert!(arena.free_slots(dev) >= 8);
            let slot = arena.acquire(dev).unwrap();
            assert_eq!(slot.device, dev);
            assert_eq!(sys.device_of(slot.data).unwrap(), dev);
            assert_eq!(sys.device_of(slot.meta).unwrap(), dev);
            assert_eq!(
                sys.classify(slot.data, 64),
                nearpm_core::Sharing::NdpManaged
            );
        }
    }

    #[test]
    fn acquire_release_cycle() {
        let (mut sys, pool) = system(ExecMode::NearPmSd);
        let mut arena = LogArena::new(&mut sys, pool, 2).unwrap();
        let before = arena.free_slots(0);
        let a = arena.acquire(0).unwrap();
        let b = arena.acquire(0).unwrap();
        assert_ne!(a, b);
        assert_eq!(arena.free_slots(0), before - 2);
        arena.release(a);
        arena.release(b);
        assert_eq!(arena.free_slots(0), before);
    }

    #[test]
    fn exhaustion_is_reported() {
        let (mut sys, pool) = system(ExecMode::NearPmSd);
        let mut arena = LogArena::new(&mut sys, pool, 1).unwrap();
        let n = arena.free_slots(0);
        for _ in 0..n {
            arena.acquire(0).unwrap();
        }
        assert!(matches!(
            arena.acquire(0),
            Err(SystemError::LogArenaFull { .. })
        ));
    }

    #[test]
    fn baseline_mode_uses_single_virtual_device() {
        let (mut sys, pool) = system(ExecMode::CpuBaseline);
        let mut arena = LogArena::new(&mut sys, pool, 4).unwrap();
        let slot = arena.acquire(0).unwrap();
        assert_eq!(slot.device, 0);
        assert!(!arena.scan_list().is_empty());
    }
}
