//! Undo- and redo-logging crash-consistency mechanisms.
//!
//! Both mechanisms expose the same transaction shape the paper's Figure 14
//! shows — the only difference between the CPU baseline and the NearPM
//! configurations is *where* the primitive operations (metadata generation,
//! data copy, log reset) execute and which synchronization the commit path
//! uses:
//!
//! * **Baseline** — everything runs on the CPU with strict persist ordering.
//! * **NearPM SD** — primitives offload to one device; the CPU's in-place
//!   update is ordered after the log copy by the in-flight access table.
//! * **NearPM MD SW-sync** — two devices; the CPU polls both before commit.
//! * **NearPM MD** — two devices; cross-device synchronization is delayed and
//!   handled near memory, keeping it off the CPU's critical path.
//!
//! Both mechanisms are built on the split-phase [`OffloadBatch`] pipeline:
//! every offload of a transaction phase (all log creates, all redo applies)
//! is posted into the group **before** the first completion point, and the
//! mode-specific commit synchronization takes the whole group at once — in
//! NearPM MD its barrier is threaded into the `CommitLog` reset commands as a
//! device-side ordering dependency (Figure 12: log deletion orders after the
//! cross-device sync without the CPU waiting).

use nearpm_core::{
    ExecMode, NearPmOp, NearPmSystem, OffloadBatch, PoolId, Region, Result, VirtAddr,
};
use nearpm_device::{EntryState, LogEntryHeader};
use nearpm_sim::{TaskId, PM_PAGE};

use crate::arena::{LogArena, LogSlot};

/// Maximum bytes protected by one log slot (one data page).
pub const MAX_LOG_CHUNK: u64 = PM_PAGE;

#[derive(Debug, Clone)]
struct ActiveEntry {
    slot: LogSlot,
    target: VirtAddr,
    len: u64,
}

/// Undo-logging transactions.
#[derive(Debug)]
pub struct UndoLog {
    pool: PoolId,
    thread: usize,
    arena: LogArena,
    /// Persistent commit-marker slot (64 bytes, [`LogEntryHeader`] format).
    /// Commit persists the marker **after** the home updates and log entries
    /// are durable and **before** the entry resets; recovery reads it to
    /// tell a mid-reset commit (complete the resets, keep the new values)
    /// from an uncommitted transaction (roll back). Without it a crash
    /// between two reset commands left some entries reset and some Active,
    /// and recovery rolled back only the Active ones — a torn image mixing
    /// old and new data.
    marker: VirtAddr,
    active: Vec<ActiveEntry>,
    /// The transaction's in-flight log creates, posted split-phase: every
    /// `log_range` offload joins the group, and commit synchronizes/releases
    /// the group as a whole.
    batch: OffloadBatch,
    /// The `CommitLog` offloads posted at commit. Their handles used to be
    /// dropped, so their in-flight records accumulated for the whole run;
    /// the next transaction's `begin` now releases every commit whose
    /// device-side execution has retired, bounding the in-flight table.
    commit_batch: OffloadBatch,
    txn: Option<u64>,
    committed_txns: u64,
}

impl UndoLog {
    /// Creates an undo-log manager backed by a fresh arena.
    pub fn new(
        sys: &mut NearPmSystem,
        pool: PoolId,
        thread: usize,
        pages_per_device: usize,
    ) -> Result<Self> {
        Ok(UndoLog {
            pool,
            thread,
            arena: LogArena::new(sys, pool, pages_per_device)?,
            marker: sys.alloc(pool, 64, 64)?,
            active: Vec::new(),
            batch: OffloadBatch::new(),
            commit_batch: OffloadBatch::new(),
            txn: None,
            committed_txns: 0,
        })
    }

    /// Number of committed transactions.
    pub fn committed(&self) -> u64 {
        self.committed_txns
    }

    /// Begins a transaction, first releasing the in-flight records of every
    /// previous commit whose device-side execution has retired (the
    /// commit-handle release that bounds the in-flight table over long
    /// runs).
    pub fn begin(&mut self, sys: &mut NearPmSystem) -> Result<u64> {
        assert!(self.txn.is_none(), "transaction already open");
        sys.release_batch_retired(&mut self.commit_batch);
        let id = sys.next_txn_id();
        self.txn = Some(id);
        Ok(id)
    }

    /// Logs the current contents of `addr..addr+len` before the caller
    /// updates it in place (`NearPM_undolg_create` or its CPU equivalent).
    pub fn log_range(&mut self, sys: &mut NearPmSystem, addr: VirtAddr, len: u64) -> Result<()> {
        let txn = self.txn.expect("log_range outside a transaction");
        // Split at device boundaries and at the slot capacity.
        let mut chunks = Vec::new();
        for (start, span_len, device) in sys.device_spans(addr, len)? {
            let mut off = 0;
            while off < span_len {
                let chunk = (span_len - off).min(MAX_LOG_CHUNK);
                chunks.push((start.offset(off), chunk, device));
                off += chunk;
            }
        }
        for (start, chunk, device) in chunks {
            let slot = self.arena.acquire(device)?;
            if sys.mode().uses_ndp() {
                // Split-phase posting: the log create joins the txn's batch
                // without materializing any wait — every logged range of the
                // transaction is in flight together.
                sys.offload_into(
                    &mut self.batch,
                    self.thread,
                    self.pool,
                    NearPmOp::UndoLogCreate {
                        src: start,
                        len: chunk,
                        log_meta: slot.meta,
                        log_data: slot.data,
                        txn_id: txn,
                    },
                    &[],
                )?;
            } else {
                // CPU baseline: generate metadata, copy old data, then
                // persist the header. The data copy comes FIRST: the header
                // flipping to `Active` is what makes recovery trust the
                // slot, so persisting it before the old data lands would
                // let a crash between the two roll garbage back into the
                // home location. (The NDP path is a single functionally
                // atomic request and has no such window.)
                let latency = sys.latency().clone();
                sys.cpu_overhead(
                    self.thread,
                    "cpu-metadata",
                    latency.cpu_metadata_ns,
                    Region::CcMetadata,
                )?;
                sys.cpu_copy(self.thread, start, slot.data, chunk, Region::CcDataMovement)?;
                let header = LogEntryHeader::active(start, chunk, txn);
                sys.cpu_write(self.thread, slot.meta, &header.encode(), Region::CcMetadata)?;
                sys.cpu_persist(self.thread, slot.meta, 64, Region::CcMetadata)?;
            }
            self.active.push(ActiveEntry {
                slot,
                target: start,
                len: chunk,
            });
        }
        Ok(())
    }

    /// In-place update of previously logged data (application persist).
    pub fn update(&mut self, sys: &mut NearPmSystem, addr: VirtAddr, data: &[u8]) -> Result<()> {
        sys.cpu_write_persist(self.thread, addr, data, Region::AppPersist)?;
        Ok(())
    }

    /// Commits the transaction: ensures all log entries are durable (mode-
    /// specific synchronization over the whole posted group), persists the
    /// commit marker, deletes the logs, and clears the marker.
    ///
    /// Marker protocol (the torn-commit fix): once the marker carrying this
    /// transaction's id is durable, the transaction is committed — a crash
    /// anywhere among the entry resets recovers by *completing* the resets.
    /// Before the marker, a crash rolls the transaction back. Either way the
    /// image is all-old or all-new, never a mix.
    pub fn commit(&mut self, sys: &mut NearPmSystem) -> Result<()> {
        let txn = self.txn.take().expect("commit without begin");

        // Phase 1: mode-specific synchronization — every log entry (and the
        // in-place updates, persisted as they happened) is durable.
        let mut reset_deps: Vec<TaskId> = Vec::new();
        match sys.mode() {
            ExecMode::CpuBaseline | ExecMode::NearPmSd => {}
            ExecMode::NearPmMdSync => {
                // CPU-polling software synchronization before the commit; the
                // commit commands issue after it on the CPU, so no device-side
                // dependency is needed.
                sys.sw_sync_batch(self.thread, &self.batch)?;
            }
            ExecMode::NearPmMd => {
                // Delayed near-memory synchronization over the group; log
                // deletion depends on it but the CPU does not wait.
                reset_deps.extend(sys.delayed_sync_batch(&self.batch)?);
            }
        }

        // Phase 2: persist the commit marker (point of no return).
        let marker = LogEntryHeader::active(VirtAddr(0), 0, txn);
        sys.cpu_write_persist(
            self.thread,
            self.marker,
            &marker.encode(),
            Region::CcMetadata,
        )?;

        // Phase 3: reset the log entries.
        match sys.mode() {
            ExecMode::CpuBaseline => {
                let latency = sys.latency().clone();
                for e in &self.active {
                    sys.cpu_overhead(
                        self.thread,
                        "cpu-log-reset",
                        latency.cpu_log_reset_ns,
                        Region::CcLogReset,
                    )?;
                    sys.cpu_write(
                        self.thread,
                        e.slot.meta,
                        &LogEntryHeader::reset_image(),
                        Region::CcLogReset,
                    )?;
                    sys.cpu_persist(self.thread, e.slot.meta, 64, Region::CcLogReset)?;
                }
            }
            _ => self.offload_commit(sys, &reset_deps)?,
        }

        // Phase 4: clear the marker — the commit is fully retired.
        sys.cpu_write_persist(
            self.thread,
            self.marker,
            &LogEntryHeader::reset_image(),
            Region::CcLogReset,
        )?;

        sys.release_batch(&mut self.batch);
        for e in self.active.drain(..) {
            self.arena.release(e.slot);
        }
        self.committed_txns += 1;
        Ok(())
    }

    fn offload_commit(&mut self, sys: &mut NearPmSystem, deps: &[TaskId]) -> Result<()> {
        let txn = self.committed_txns;
        // Group entries by device, one commit command per device (the memory
        // controller duplicates commands for objects spanning devices).
        let devices: Vec<usize> = {
            let mut d: Vec<usize> = self.active.iter().map(|e| e.slot.device).collect();
            d.sort_unstable();
            d.dedup();
            d
        };
        for dev in devices {
            let entries: Vec<VirtAddr> = self
                .active
                .iter()
                .filter(|e| e.slot.device == dev)
                .map(|e| e.slot.meta)
                .collect();
            if entries.is_empty() {
                continue;
            }
            sys.offload_into(
                &mut self.commit_batch,
                self.thread,
                self.pool,
                NearPmOp::CommitLog {
                    entries,
                    txn_id: txn,
                },
                deps,
            )?;
        }
        Ok(())
    }

    /// Recovery: reads the commit marker first. Entries of a transaction
    /// whose marker was durable at the crash were *committing* — their home
    /// locations already hold the new values, so recovery completes the
    /// interrupted resets. Every other `Active` entry is rolled back by
    /// copying the logged old data to its home location. Returns the number
    /// of entries rolled back.
    pub fn recover(&mut self, sys: &mut NearPmSystem) -> Result<usize> {
        sys.begin_recovery()?;
        let committing = LogEntryHeader::decode(&sys.persistent_read(self.marker, 64)?)
            .filter(|h| h.state == EntryState::Active)
            .map(|h| h.txn_id);
        let mut rolled_back = 0;
        for (meta, data, _dev) in self.arena.scan_list().to_vec() {
            let header_bytes = sys.persistent_read(meta, 64)?;
            if let Some(header) = LogEntryHeader::decode(&header_bytes) {
                if header.state == EntryState::Active {
                    if committing != Some(header.txn_id) {
                        let old = sys.persistent_read(data, header.len as usize)?;
                        sys.cpu_read(
                            self.thread,
                            data,
                            header.len as usize,
                            Region::CcDataMovement,
                        )?;
                        sys.cpu_write_persist(
                            self.thread,
                            header.target,
                            &old,
                            Region::CcDataMovement,
                        )?;
                        rolled_back += 1;
                    }
                    // Reset the entry (completing the commit for marked
                    // transactions) so recovery is idempotent either way.
                    sys.cpu_write_persist(
                        self.thread,
                        meta,
                        &LogEntryHeader::reset_image(),
                        Region::CcLogReset,
                    )?;
                }
            }
        }
        // Clear the marker last: once every entry of the marked transaction
        // is reset, the commit is retired. (A crash between the resets and
        // this clear leaves a marker with no matching entries — the next
        // recovery pass finds nothing Active and just clears it again.)
        if committing.is_some() {
            sys.cpu_write_persist(
                self.thread,
                self.marker,
                &LogEntryHeader::reset_image(),
                Region::CcLogReset,
            )?;
        }
        // Any slots that belonged to the interrupted transaction are free
        // again; the batch's handles died with the crashed transaction, and
        // the previous commits' ordering records are moot after a restart.
        for e in self.active.drain(..) {
            self.arena.release(e.slot);
        }
        self.batch.clear();
        sys.release_batch(&mut self.commit_batch);
        self.txn = None;
        sys.finish_recovery();
        Ok(rolled_back)
    }
}

/// Redo-logging transactions: updates are staged in a redo log first and
/// applied to the home locations at commit.
#[derive(Debug)]
pub struct RedoLog {
    pool: PoolId,
    thread: usize,
    arena: LogArena,
    /// Persistent commit-marker slot ([`LogEntryHeader`] format). Redo
    /// commit persists the marker **before** the first apply touches a home
    /// location: once durable, recovery rolls the transaction *forward* by
    /// re-applying the staged entries (idempotent — the log holds the full
    /// new data). Without it a crash mid-applies left homes partially
    /// updated while recovery discarded the log — a torn image.
    marker: VirtAddr,
    staged: Vec<ActiveEntry>,
    /// The commit phase's in-flight `ApplyRedoLog` offloads, posted
    /// split-phase before the mode-specific synchronization.
    batch: OffloadBatch,
    /// The `CommitLog` reset offloads posted at commit, released (once
    /// retired) at the next transaction's begin — see [`UndoLog`].
    commit_batch: OffloadBatch,
    txn: Option<u64>,
    committed_txns: u64,
}

impl RedoLog {
    /// Creates a redo-log manager backed by a fresh arena.
    pub fn new(
        sys: &mut NearPmSystem,
        pool: PoolId,
        thread: usize,
        pages_per_device: usize,
    ) -> Result<Self> {
        Ok(RedoLog {
            pool,
            thread,
            arena: LogArena::new(sys, pool, pages_per_device)?,
            marker: sys.alloc(pool, 64, 64)?,
            staged: Vec::new(),
            batch: OffloadBatch::new(),
            commit_batch: OffloadBatch::new(),
            txn: None,
            committed_txns: 0,
        })
    }

    /// Number of committed transactions.
    pub fn committed(&self) -> u64 {
        self.committed_txns
    }

    /// Begins a transaction, first releasing the in-flight records of every
    /// previous commit whose device-side execution has retired.
    pub fn begin(&mut self, sys: &mut NearPmSystem) -> Result<u64> {
        assert!(self.txn.is_none(), "transaction already open");
        sys.release_batch_retired(&mut self.commit_batch);
        let id = sys.next_txn_id();
        self.txn = Some(id);
        Ok(id)
    }

    /// Stages `data` to be written to `addr` at commit. The redo-log entry is
    /// created by the CPU (Figure 14c/d): metadata + new value, persisted.
    pub fn stage(&mut self, sys: &mut NearPmSystem, addr: VirtAddr, data: &[u8]) -> Result<()> {
        let txn = self.txn.expect("stage outside a transaction");
        assert!(
            data.len() as u64 <= MAX_LOG_CHUNK,
            "staged update too large"
        );
        let device = sys.device_of(addr)?;
        let slot = self.arena.acquire(device)?;
        let latency = sys.latency().clone();
        sys.cpu_overhead(
            self.thread,
            "cpu-metadata",
            latency.cpu_metadata_ns,
            Region::CcMetadata,
        )?;
        let header = LogEntryHeader::active(addr, data.len() as u64, txn);
        sys.cpu_write(self.thread, slot.meta, &header.encode(), Region::CcMetadata)?;
        sys.cpu_persist(self.thread, slot.meta, 64, Region::CcMetadata)?;
        sys.cpu_write(self.thread, slot.data, data, Region::CcDataMovement)?;
        sys.cpu_persist(
            self.thread,
            slot.data,
            data.len() as u64,
            Region::CcDataMovement,
        )?;
        self.staged.push(ActiveEntry {
            slot,
            target: addr,
            len: data.len() as u64,
        });
        Ok(())
    }

    /// Commits: applies every staged entry to its home location
    /// (`NearPM_applylog` or a CPU copy), synchronizes according to the mode,
    /// and resets the log.
    ///
    /// Split-phase structure: **all** applies are posted into the batch
    /// before the synchronization point, and in NearPM MD the delayed-sync
    /// barrier is threaded into the `CommitLog` reset commands as a
    /// device-side ordering dependency, so the log reset is ordered after the
    /// cross-device sync exactly as Figure 12 requires (previously the
    /// barrier was computed but not passed, leaving the reset unordered).
    pub fn commit(&mut self, sys: &mut NearPmSystem) -> Result<()> {
        let txn = self.txn.take().expect("commit without begin");

        // Commit marker FIRST (the torn-applies fix): every staged entry is
        // already durable, so once the marker is durable the transaction is
        // committed — a crash anywhere among the applies or resets recovers
        // by re-applying the log (idempotent). Before the marker, no home
        // location has been touched and recovery discards the log.
        let marker = LogEntryHeader::active(VirtAddr(0), 0, txn);
        sys.cpu_write_persist(
            self.thread,
            self.marker,
            &marker.encode(),
            Region::CcMetadata,
        )?;

        if sys.mode().uses_ndp() {
            for e in &self.staged {
                sys.offload_into(
                    &mut self.batch,
                    self.thread,
                    self.pool,
                    NearPmOp::ApplyRedoLog {
                        log_data: e.slot.data,
                        dst: e.target,
                        len: e.len,
                    },
                    &[],
                )?;
            }
        } else {
            for e in &self.staged {
                sys.cpu_copy(
                    self.thread,
                    e.slot.data,
                    e.target,
                    e.len,
                    Region::CcDataMovement,
                )?;
            }
        }

        let mut reset_deps: Vec<TaskId> = Vec::new();
        match sys.mode() {
            ExecMode::CpuBaseline | ExecMode::NearPmSd => {}
            ExecMode::NearPmMdSync => {
                // The CPU polls the devices; the reset commands issue after
                // the poll on the CPU, so no device-side dependency is needed.
                sys.sw_sync_batch(self.thread, &self.batch)?;
            }
            ExecMode::NearPmMd => {
                // The near-memory barrier the log reset must order after.
                reset_deps.extend(sys.delayed_sync_batch(&self.batch)?);
            }
        }

        // Reset the log entries, ordered after the delayed sync (if any).
        if sys.mode().uses_ndp() {
            let devices: Vec<usize> = {
                let mut d: Vec<usize> = self.staged.iter().map(|e| e.slot.device).collect();
                d.sort_unstable();
                d.dedup();
                d
            };
            for dev in devices {
                let entries: Vec<VirtAddr> = self
                    .staged
                    .iter()
                    .filter(|e| e.slot.device == dev)
                    .map(|e| e.slot.meta)
                    .collect();
                sys.offload_into(
                    &mut self.commit_batch,
                    self.thread,
                    self.pool,
                    NearPmOp::CommitLog {
                        entries,
                        txn_id: self.committed_txns,
                    },
                    &reset_deps,
                )?;
            }
        } else {
            let latency = sys.latency().clone();
            for e in &self.staged {
                sys.cpu_overhead(
                    self.thread,
                    "cpu-log-reset",
                    latency.cpu_log_reset_ns,
                    Region::CcLogReset,
                )?;
                sys.cpu_write(
                    self.thread,
                    e.slot.meta,
                    &LogEntryHeader::reset_image(),
                    Region::CcLogReset,
                )?;
                sys.cpu_persist(self.thread, e.slot.meta, 64, Region::CcLogReset)?;
            }
        }

        // Clear the marker — the commit is fully retired.
        sys.cpu_write_persist(
            self.thread,
            self.marker,
            &LogEntryHeader::reset_image(),
            Region::CcLogReset,
        )?;

        sys.release_batch(&mut self.batch);
        for e in self.staged.drain(..) {
            self.arena.release(e.slot);
        }
        self.committed_txns += 1;
        Ok(())
    }

    /// Recovery: reads the commit marker first. Entries of a transaction
    /// whose marker was durable at the crash are rolled **forward** — the
    /// staged new data is re-applied to the home locations (idempotent) and
    /// the entries reset. Every other `Active` entry is discarded (its home
    /// location was never touched). Returns how many entries were processed
    /// (discarded or rolled forward).
    pub fn recover(&mut self, sys: &mut NearPmSystem) -> Result<usize> {
        sys.begin_recovery()?;
        let committing = LogEntryHeader::decode(&sys.persistent_read(self.marker, 64)?)
            .filter(|h| h.state == EntryState::Active)
            .map(|h| h.txn_id);
        let mut processed = 0;
        for (meta, data, _dev) in self.arena.scan_list().to_vec() {
            let header_bytes = sys.persistent_read(meta, 64)?;
            if let Some(header) = LogEntryHeader::decode(&header_bytes) {
                if header.state == EntryState::Active {
                    if committing == Some(header.txn_id) {
                        // Roll forward: the log holds the full new data.
                        let new = sys.persistent_read(data, header.len as usize)?;
                        sys.cpu_read(
                            self.thread,
                            data,
                            header.len as usize,
                            Region::CcDataMovement,
                        )?;
                        sys.cpu_write_persist(
                            self.thread,
                            header.target,
                            &new,
                            Region::CcDataMovement,
                        )?;
                    }
                    sys.cpu_write_persist(
                        self.thread,
                        meta,
                        &LogEntryHeader::reset_image(),
                        Region::CcLogReset,
                    )?;
                    processed += 1;
                }
            }
        }
        if committing.is_some() {
            sys.cpu_write_persist(
                self.thread,
                self.marker,
                &LogEntryHeader::reset_image(),
                Region::CcLogReset,
            )?;
        }
        for e in self.staged.drain(..) {
            self.arena.release(e.slot);
        }
        self.batch.clear();
        sys.release_batch(&mut self.commit_batch);
        self.txn = None;
        sys.finish_recovery();
        Ok(processed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nearpm_core::{ExecMode, SystemConfig};

    fn setup(mode: ExecMode) -> (NearPmSystem, PoolId, VirtAddr) {
        let mut sys = NearPmSystem::new(SystemConfig::for_mode(mode).with_capacity(16 << 20));
        let pool = sys.create_pool("log-test", 8 << 20).unwrap();
        let obj = sys.alloc(pool, 8192, 4096).unwrap();
        sys.cpu_write_persist(0, obj, &vec![0xAB; 8192], Region::AppPersist)
            .unwrap();
        (sys, pool, obj)
    }

    #[test]
    fn undo_log_commit_keeps_new_value_all_modes() {
        for mode in ExecMode::all() {
            let (mut sys, pool, obj) = setup(mode);
            let mut undo = UndoLog::new(&mut sys, pool, 0, 8).unwrap();
            undo.begin(&mut sys).unwrap();
            undo.log_range(&mut sys, obj, 128).unwrap();
            undo.update(&mut sys, obj, &[0xCD; 128]).unwrap();
            undo.commit(&mut sys).unwrap();
            assert_eq!(undo.committed(), 1);
            assert_eq!(
                sys.persistent_read(obj, 128).unwrap(),
                vec![0xCD; 128],
                "mode {:?}",
                mode
            );
            let report = sys.report();
            assert!(
                report.ppo_violations.is_empty(),
                "{mode:?}: {:?}",
                report.ppo_violations
            );
        }
    }

    #[test]
    fn undo_log_crash_before_commit_rolls_back() {
        for mode in ExecMode::all() {
            let (mut sys, pool, obj) = setup(mode);
            let mut undo = UndoLog::new(&mut sys, pool, 0, 8).unwrap();
            undo.begin(&mut sys).unwrap();
            undo.log_range(&mut sys, obj, 256).unwrap();
            undo.update(&mut sys, obj, &[0xEE; 256]).unwrap();
            // Crash before commit: the update must be rolled back.
            sys.crash();
            let rolled = undo.recover(&mut sys).unwrap();
            assert!(rolled >= 1, "mode {:?}", mode);
            assert_eq!(
                sys.persistent_read(obj, 256).unwrap(),
                vec![0xAB; 256],
                "mode {:?}",
                mode
            );
        }
    }

    #[test]
    fn undo_log_crash_after_commit_keeps_update() {
        let (mut sys, pool, obj) = setup(ExecMode::NearPmMd);
        let mut undo = UndoLog::new(&mut sys, pool, 0, 8).unwrap();
        undo.begin(&mut sys).unwrap();
        undo.log_range(&mut sys, obj, 64).unwrap();
        undo.update(&mut sys, obj, &[0x11; 64]).unwrap();
        undo.commit(&mut sys).unwrap();
        sys.crash();
        let rolled = undo.recover(&mut sys).unwrap();
        assert_eq!(rolled, 0);
        assert_eq!(sys.persistent_read(obj, 64).unwrap(), vec![0x11; 64]);
    }

    #[test]
    fn undo_log_multi_device_object_spans_both_devices() {
        let (mut sys, pool, obj) = setup(ExecMode::NearPmMd);
        let mut undo = UndoLog::new(&mut sys, pool, 0, 8).unwrap();
        undo.begin(&mut sys).unwrap();
        // 8 kB object spans both interleaved devices.
        undo.log_range(&mut sys, obj, 8192).unwrap();
        undo.update(&mut sys, obj, &vec![0x77; 8192]).unwrap();
        undo.commit(&mut sys).unwrap();
        let report = sys.report();
        assert!(report.ppo_violations.is_empty());
        // Both devices executed requests.
        assert!(report.ndp_requests >= 3); // 2+ log creates + commits
        assert_eq!(sys.persistent_read(obj, 8192).unwrap(), vec![0x77; 8192]);
    }

    #[test]
    fn redo_log_commit_applies_staged_updates() {
        for mode in ExecMode::all() {
            let (mut sys, pool, obj) = setup(mode);
            let mut redo = RedoLog::new(&mut sys, pool, 0, 8).unwrap();
            redo.begin(&mut sys).unwrap();
            redo.stage(&mut sys, obj, &[0x42; 64]).unwrap();
            redo.stage(&mut sys, obj.offset(4096), &[0x43; 64]).unwrap();
            // Home locations untouched before commit.
            assert_eq!(sys.persistent_read(obj, 64).unwrap(), vec![0xAB; 64]);
            redo.commit(&mut sys).unwrap();
            assert_eq!(sys.persistent_read(obj, 64).unwrap(), vec![0x42; 64]);
            assert_eq!(
                sys.persistent_read(obj.offset(4096), 64).unwrap(),
                vec![0x43; 64]
            );
            assert!(sys.report().ppo_violations.is_empty(), "mode {:?}", mode);
        }
    }

    /// ROADMAP-flagged bugfix regression: in NearPM MD the `CommitLog` reset
    /// commands must be ordered **after** the delayed-sync barrier on the
    /// device side (Figure 12). Before the fix, `RedoLog::commit` computed
    /// the barrier but posted the resets with no dependency, so a reset
    /// could start while the cross-device sync was still in flight.
    #[test]
    fn redo_md_commit_orders_log_reset_after_delayed_sync() {
        let (mut sys, pool, obj) = setup(ExecMode::NearPmMd);
        let mut redo = RedoLog::new(&mut sys, pool, 0, 8).unwrap();
        redo.begin(&mut sys).unwrap();
        // Two staged updates on different devices force a cross-device sync.
        redo.stage(&mut sys, obj, &[0x42; 64]).unwrap();
        redo.stage(&mut sys, obj.offset(4096), &[0x43; 64]).unwrap();
        redo.commit(&mut sys).unwrap();

        let graph = sys.graph();
        let sync_finish = graph
            .tasks()
            .filter(|t| t.label == "md-sync")
            .map(|t| graph.task_finish(t.id))
            .max()
            .expect("MD commit must post a delayed sync");
        let resets: Vec<_> = graph
            .tasks()
            .filter(|t| t.label == "ndp-log-reset")
            .map(|t| t.id)
            .collect();
        assert!(!resets.is_empty(), "commit must reset the log entries");
        for id in resets {
            assert!(
                graph.task_start(id) >= sync_finish,
                "log reset starts before the delayed-sync barrier completes"
            );
        }
        assert!(sys.report().ppo_violations.is_empty());
    }

    /// Redo-specific recovery: a crash **between the delayed sync and the
    /// commit's log reset** leaves every staged entry `Active` while the
    /// applies have already reached the home locations. Recovery must keep
    /// the applied values (redo entries are idempotent to discard once
    /// applied), reset the entries, and leave the log usable.
    #[test]
    fn redo_crash_between_delayed_sync_and_commit_recovers() {
        let (mut sys, pool, obj) = setup(ExecMode::NearPmMd);
        let mut redo = RedoLog::new(&mut sys, pool, 0, 8).unwrap();
        redo.begin(&mut sys).unwrap();
        redo.stage(&mut sys, obj, &[0x42; 64]).unwrap();
        redo.stage(&mut sys, obj.offset(4096), &[0x43; 64]).unwrap();

        // Drive the commit path manually up to (and including) the delayed
        // sync, then crash before the CommitLog resets are posted.
        let staged: Vec<(VirtAddr, VirtAddr, u64)> = redo
            .staged
            .iter()
            .map(|e| (e.slot.data, e.target, e.len))
            .collect();
        let mut batch = OffloadBatch::new();
        for (log_data, dst, len) in staged {
            sys.offload_into(
                &mut batch,
                0,
                pool,
                NearPmOp::ApplyRedoLog { log_data, dst, len },
                &[],
            )
            .unwrap();
        }
        sys.delayed_sync_batch(&batch).unwrap().unwrap();
        sys.crash();

        // The applies reached the persistence domain before the failure
        // (persistent_read works while crashed — it is what recovery sees).
        assert_eq!(sys.persistent_read(obj, 64).unwrap(), vec![0x42; 64]);

        // Both entries were still Active (the reset never ran): recovery
        // resets them without touching the applied home locations.
        let discarded = redo.recover(&mut sys).unwrap();
        assert_eq!(discarded, 2);
        assert_eq!(sys.persistent_read(obj, 64).unwrap(), vec![0x42; 64]);
        assert_eq!(
            sys.persistent_read(obj.offset(4096), 64).unwrap(),
            vec![0x43; 64]
        );
        // Idempotent: recovery after a second crash finds nothing Active.
        sys.crash();
        assert_eq!(redo.recover(&mut sys).unwrap(), 0);

        // The log is fully usable for the next transaction.
        redo.begin(&mut sys).unwrap();
        redo.stage(&mut sys, obj, &[0x55; 64]).unwrap();
        redo.commit(&mut sys).unwrap();
        assert_eq!(sys.persistent_read(obj, 64).unwrap(), vec![0x55; 64]);
        assert!(sys.report().ppo_violations.is_empty());
    }

    #[test]
    fn redo_log_crash_before_commit_discards_staged() {
        let (mut sys, pool, obj) = setup(ExecMode::NearPmSd);
        let mut redo = RedoLog::new(&mut sys, pool, 0, 8).unwrap();
        redo.begin(&mut sys).unwrap();
        redo.stage(&mut sys, obj, &[0x99; 64]).unwrap();
        sys.crash();
        let discarded = redo.recover(&mut sys).unwrap();
        assert_eq!(discarded, 1);
        // Home location unchanged.
        assert_eq!(sys.persistent_read(obj, 64).unwrap(), vec![0xAB; 64]);
    }

    /// ROADMAP commit-handle release: the `CommitLog` offloads posted by
    /// `UndoLog::commit` / `RedoLog::commit` used to drop their handles, so
    /// one in-flight record per commit per device accumulated for the whole
    /// run. With the retired-release at the next `begin`, a long run's
    /// in-flight table stays bounded by the work genuinely in flight.
    #[test]
    fn commit_records_are_released_and_inflight_table_stays_bounded() {
        const TXNS: u64 = 64;
        for mode in [ExecMode::NearPmSd, ExecMode::NearPmMd] {
            let (mut sys, pool, obj) = setup(mode);
            let mut undo = UndoLog::new(&mut sys, pool, 0, 8).unwrap();
            let mut peak = 0usize;
            for i in 0..TXNS {
                undo.begin(&mut sys).unwrap();
                let site = obj.offset((i % 2) * 4096);
                undo.log_range(&mut sys, site, 256).unwrap();
                undo.update(&mut sys, site, &[i as u8; 256]).unwrap();
                undo.commit(&mut sys).unwrap();
                peak = peak.max(sys.inflight_records());
            }
            assert!(
                peak <= 16,
                "{mode:?}: in-flight table peaked at {peak} records over {TXNS} txns \
                 — commit handles are leaking again"
            );
            assert!(sys.report().ppo_violations.is_empty(), "mode {mode:?}");

            let mut redo = RedoLog::new(&mut sys, pool, 0, 8).unwrap();
            let mut peak = 0usize;
            for i in 0..TXNS {
                redo.begin(&mut sys).unwrap();
                redo.stage(&mut sys, obj.offset((i % 2) * 4096), &[i as u8; 64])
                    .unwrap();
                redo.commit(&mut sys).unwrap();
                peak = peak.max(sys.inflight_records());
            }
            assert!(
                peak <= 16,
                "{mode:?}: redo in-flight table peaked at {peak} records over {TXNS} txns"
            );
            assert!(sys.report().ppo_violations.is_empty(), "mode {mode:?}");
        }
    }

    /// The retirement bar is the minimum over threads that have issued
    /// work: configured-but-idle CPU threads must not pin it at time zero
    /// and silently defeat the release (the table would leak exactly as
    /// before the fix).
    #[test]
    fn idle_threads_do_not_block_commit_record_release() {
        let mut sys = NearPmSystem::new(
            SystemConfig::for_mode(ExecMode::NearPmMd)
                .with_cpu_threads(4)
                .with_capacity(16 << 20),
        );
        let pool = sys.create_pool("idle-threads", 8 << 20).unwrap();
        let obj = sys.alloc(pool, 8192, 4096).unwrap();
        sys.cpu_write_persist(0, obj, &vec![0xAB; 8192], Region::AppPersist)
            .unwrap();
        // Only thread 0 ever runs transactions; threads 1-3 stay idle.
        let mut undo = UndoLog::new(&mut sys, pool, 0, 8).unwrap();
        let mut peak = 0usize;
        for i in 0..64u64 {
            undo.begin(&mut sys).unwrap();
            let site = obj.offset((i % 2) * 4096);
            undo.log_range(&mut sys, site, 256).unwrap();
            undo.update(&mut sys, site, &[i as u8; 256]).unwrap();
            undo.commit(&mut sys).unwrap();
            peak = peak.max(sys.inflight_records());
        }
        assert!(
            peak <= 16,
            "idle threads pinned the retirement bar: in-flight table peaked at {peak}"
        );
        assert!(sys.report().ppo_violations.is_empty());
    }

    #[test]
    fn nearpm_modes_are_faster_than_baseline_for_logging() {
        let run = |mode: ExecMode| {
            let (mut sys, pool, obj) = setup(mode);
            let mut undo = UndoLog::new(&mut sys, pool, 0, 16).unwrap();
            for i in 0..8u64 {
                undo.begin(&mut sys).unwrap();
                undo.log_range(&mut sys, obj.offset((i % 2) * 4096), 1024)
                    .unwrap();
                sys.cpu_compute(0, 400.0).unwrap();
                undo.update(&mut sys, obj.offset((i % 2) * 4096), &[i as u8; 1024])
                    .unwrap();
                undo.commit(&mut sys).unwrap();
            }
            sys.report()
        };
        let base = run(ExecMode::CpuBaseline);
        let sd = run(ExecMode::NearPmSd);
        let md = run(ExecMode::NearPmMd);
        assert!(sd.makespan < base.makespan, "SD should beat baseline");
        assert!(md.makespan < base.makespan, "MD should beat baseline");
        assert!(sd.cc_time < base.cc_time);
    }
}
