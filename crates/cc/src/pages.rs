//! Page-granular crash-consistency mechanisms: checkpointing and shadow
//! paging.
//!
//! Both operate at 4 kB page granularity, as in the paper's evaluation:
//!
//! * **Checkpointing** keeps a snapshot of each page taken before its first
//!   update in the current epoch; recovery restores the snapshots of the
//!   epoch that was in progress when the failure hit.
//! * **Shadow paging** redirects updates to a freshly copied shadow page and
//!   atomically switches a page-table entry at commit; recovery needs no data
//!   movement because the page table always references a complete page.

use std::collections::{HashMap, HashSet};

use nearpm_core::{
    ExecMode, NearPmOp, NearPmSystem, OffloadBatch, PoolId, Region, Result, VirtAddr,
};
use nearpm_device::{EntryState, LogEntryHeader};
use nearpm_sim::PM_PAGE;

use crate::arena::{LogArena, LogSlot};

/// Checkpointing mechanism (4 kB pages, epoch-based).
#[derive(Debug)]
pub struct Checkpoint {
    pool: PoolId,
    thread: usize,
    arena: LogArena,
    epoch: u64,
    /// Pages checkpointed in the current epoch: page base → slot.
    snapshots: HashMap<u64, LogSlot>,
    /// The epoch's in-flight snapshot offloads, posted split-phase; the
    /// epoch boundary synchronizes and releases the group as a whole.
    batch: OffloadBatch,
    epochs_completed: u64,
}

impl Checkpoint {
    /// Creates a checkpointing manager.
    pub fn new(
        sys: &mut NearPmSystem,
        pool: PoolId,
        thread: usize,
        pages_per_device: usize,
    ) -> Result<Self> {
        Ok(Checkpoint {
            pool,
            thread,
            arena: LogArena::new(sys, pool, pages_per_device)?,
            epoch: 0,
            snapshots: HashMap::new(),
            batch: OffloadBatch::new(),
            epochs_completed: 0,
        })
    }

    /// Re-creates a checkpoint manager over an existing persistent image
    /// after a process restart: same allocation sequence as
    /// [`Checkpoint::new`] (arena and marker land at the same addresses, and
    /// the constructor writes nothing, so it also works on a still-crashed
    /// system) with the epoch counter read back from the system's persistent
    /// metadata (the media manifest, kept current by
    /// [`Checkpoint::advance_epoch`]). No replay of the pre-crash run is
    /// needed to learn which epoch was in flight, so
    /// [`Checkpoint::recover`] restores that epoch's snapshots and not a
    /// committed predecessor's.
    pub fn reattach(
        sys: &mut NearPmSystem,
        pool: PoolId,
        thread: usize,
        pages_per_device: usize,
    ) -> Result<Self> {
        let epoch = sys.checkpoint_epoch();
        let mut ck = Self::new(sys, pool, thread, pages_per_device)?;
        ck.epoch = epoch;
        ck.epochs_completed = epoch;
        Ok(ck)
    }

    /// Current epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of completed epochs.
    pub fn epochs_completed(&self) -> u64 {
        self.epochs_completed
    }

    fn page_base(addr: VirtAddr) -> VirtAddr {
        VirtAddr(addr.raw() & !(PM_PAGE - 1))
    }

    /// Must be called before updating any byte of the page containing `addr`:
    /// on the first touch in an epoch the page is snapshotted
    /// (`NearPM_ckpoint_create` or a CPU copy preceded by fault handling).
    pub fn touch(&mut self, sys: &mut NearPmSystem, addr: VirtAddr) -> Result<()> {
        let page = Self::page_base(addr);
        if self.snapshots.contains_key(&page.raw()) {
            return Ok(());
        }
        // The write-protection fault that detects the first touch is handled
        // on the CPU in both configurations.
        let latency = sys.latency().clone();
        sys.cpu_overhead(
            self.thread,
            "page-fault",
            latency.cpu_page_fault_ns,
            Region::CcPageFault,
        )?;
        let device = sys.device_of(page)?;
        let slot = self.arena.acquire(device)?;
        if sys.mode().uses_ndp() {
            // Split-phase posting: the snapshot joins the epoch's batch
            // without materializing a wait.
            sys.offload_into(
                &mut self.batch,
                self.thread,
                self.pool,
                NearPmOp::CheckpointCreate {
                    src: page,
                    len: PM_PAGE,
                    ckpt_meta: slot.meta,
                    ckpt_data: slot.data,
                    epoch: self.epoch,
                },
                &[],
            )?;
        } else {
            // Data first, then the header: the `Active` header is what makes
            // recovery restore the slot, so persisting it before the page
            // contents land would let a crash between the two restore
            // garbage over the home page. (The NDP path is one functionally
            // atomic request.)
            sys.cpu_copy(
                self.thread,
                page,
                slot.data,
                PM_PAGE,
                Region::CcDataMovement,
            )?;
            let header = LogEntryHeader::active(page, PM_PAGE, self.epoch);
            sys.cpu_write(self.thread, slot.meta, &header.encode(), Region::CcMetadata)?;
            sys.cpu_persist(self.thread, slot.meta, 64, Region::CcMetadata)?;
        }
        self.snapshots.insert(page.raw(), slot);
        Ok(())
    }

    /// Split-phase form of [`Checkpoint::touch`] over several addresses: the
    /// first-touch snapshot of every page is posted into the epoch's batch
    /// back to back, before any of them is waited on.
    pub fn touch_many(&mut self, sys: &mut NearPmSystem, addrs: &[VirtAddr]) -> Result<()> {
        for addr in addrs {
            self.touch(sys, *addr)?;
        }
        Ok(())
    }

    /// Application update of checkpointed data.
    pub fn update(&mut self, sys: &mut NearPmSystem, addr: VirtAddr, data: &[u8]) -> Result<()> {
        debug_assert!(
            self.snapshots.contains_key(&Self::page_base(addr).raw()),
            "update of a page that was not checkpointed this epoch"
        );
        sys.cpu_write_persist(self.thread, addr, data, Region::AppPersist)?;
        Ok(())
    }

    /// Ends the current epoch: the snapshots become obsolete and their slots
    /// are recycled. Mode-specific synchronization takes the whole epoch's
    /// posted group at once, mirroring the logging paths.
    pub fn advance_epoch(&mut self, sys: &mut NearPmSystem) -> Result<()> {
        match sys.mode() {
            ExecMode::CpuBaseline | ExecMode::NearPmSd => {}
            ExecMode::NearPmMdSync => {
                sys.sw_sync_batch(self.thread, &self.batch)?;
            }
            ExecMode::NearPmMd => {
                sys.delayed_sync_batch(&self.batch)?;
            }
        }
        sys.release_batch(&mut self.batch);
        for (_page, slot) in self.snapshots.drain() {
            self.arena.release(slot);
        }
        self.epoch += 1;
        self.epochs_completed += 1;
        // The bump only happens after the epoch's synchronization succeeded
        // (a crash mid-sync propagates above), so recording it durably here
        // is exactly the commit point a restarted process must see.
        sys.set_checkpoint_epoch(self.epoch)?;
        Ok(())
    }

    /// Recovery: restores every page snapshotted in the interrupted epoch,
    /// resetting each entry's header once its page is restored so a second
    /// pass finds nothing to do (idempotence). The restore-then-reset order
    /// is crash-safe: a crash between the two leaves the header `Active` and
    /// the next pass restores the same snapshot again — a no-op.
    /// Returns the number of pages restored.
    pub fn recover(&mut self, sys: &mut NearPmSystem) -> Result<usize> {
        sys.begin_recovery()?;
        let mut restored = 0;
        for (meta, data, _dev) in self.arena.scan_list().to_vec() {
            let header_bytes = sys.persistent_read(meta, 64)?;
            if let Some(header) = LogEntryHeader::decode(&header_bytes) {
                if header.state == EntryState::Active && header.txn_id == self.epoch {
                    let snapshot = sys.persistent_read(data, header.len as usize)?;
                    sys.cpu_read(
                        self.thread,
                        data,
                        header.len as usize,
                        Region::CcDataMovement,
                    )?;
                    sys.cpu_write_persist(
                        self.thread,
                        header.target,
                        &snapshot,
                        Region::CcDataMovement,
                    )?;
                    sys.cpu_write_persist(
                        self.thread,
                        meta,
                        &LogEntryHeader::reset_image(),
                        Region::CcLogReset,
                    )?;
                    restored += 1;
                }
            }
        }
        for (_page, slot) in self.snapshots.drain() {
            self.arena.release(slot);
        }
        self.batch.clear();
        sys.finish_recovery();
        Ok(restored)
    }
}

/// Shadow-paging mechanism: a persistent page table redirects reads to the
/// current version of each logical page; updates build a shadow copy and
/// switch the table entry atomically.
#[derive(Debug)]
pub struct ShadowPaging {
    pool: PoolId,
    thread: usize,
    arena: LogArena,
    /// Persistent page-table base: `pages` entries of 8 bytes each.
    table: VirtAddr,
    /// Cached copy of the table (the persistent copy is authoritative).
    entries: Vec<VirtAddr>,
    /// Per-logical-page bound spare: acquired from the arena on the page's
    /// first update and owned by that page forever after — every switch
    /// makes the old home page the new spare, so each logical page
    /// flip-flops between two fixed physical pages. No slot ever returns to
    /// the shared free list, which keeps shadow placement deterministic and
    /// identical between the serial and pipelined paths (raw-media
    /// differentials are exact, not just logical-page ones).
    spares: Vec<Option<LogSlot>>,
    switches: u64,
}

impl ShadowPaging {
    /// Creates a shadow-paging manager over `pages` logical pages, allocating
    /// the initial pages and the persistent page table from the pool.
    pub fn new(
        sys: &mut NearPmSystem,
        pool: PoolId,
        thread: usize,
        pages: usize,
        spare_pages_per_device: usize,
    ) -> Result<Self> {
        let table = sys.alloc(pool, (pages as u64) * 8, 64)?;
        let mut entries = Vec::with_capacity(pages);
        for i in 0..pages {
            let page = sys.alloc(pool, PM_PAGE, PM_PAGE)?;
            entries.push(page);
            sys.cpu_write_persist(
                thread,
                table.offset(i as u64 * 8),
                &page.raw().to_le_bytes(),
                Region::AppPersist,
            )?;
        }
        Ok(ShadowPaging {
            pool,
            thread,
            arena: LogArena::new(sys, pool, spare_pages_per_device)?,
            table,
            entries,
            spares: vec![None; pages],
            switches: 0,
        })
    }

    /// Re-creates a shadow-paging manager over an existing persistent image
    /// after a process restart: performs the same allocation sequence as
    /// [`ShadowPaging::new`] (so the table, initial pages, and arena land at
    /// the same addresses) but writes nothing — the system may still be in
    /// the crashed state, and the persistent page table is authoritative.
    /// Callers must run [`ShadowPaging::recover`] before reading pages; the
    /// cached entries are stale until then.
    pub fn reattach(
        sys: &mut NearPmSystem,
        pool: PoolId,
        thread: usize,
        pages: usize,
        spare_pages_per_device: usize,
    ) -> Result<Self> {
        let table = sys.alloc(pool, (pages as u64) * 8, 64)?;
        let mut entries = Vec::with_capacity(pages);
        for _ in 0..pages {
            entries.push(sys.alloc(pool, PM_PAGE, PM_PAGE)?);
        }
        Ok(ShadowPaging {
            pool,
            thread,
            arena: LogArena::new(sys, pool, spare_pages_per_device)?,
            table,
            entries,
            spares: vec![None; pages],
            switches: 0,
        })
    }

    /// Returns the shadow slot for logical page `idx`, binding a fresh spare
    /// from the arena (on the page's home device) the first time the page is
    /// updated. The first update of each page acquires in site order on both
    /// the serial and pipelined paths, so the binding — and therefore the
    /// raw media layout — is identical between them.
    fn shadow_slot(&mut self, sys: &mut NearPmSystem, idx: usize) -> Result<LogSlot> {
        if let Some(slot) = self.spares[idx] {
            return Ok(slot);
        }
        let device = sys.device_of(self.entries[idx])?;
        let slot = self.arena.acquire(device)?;
        self.spares[idx] = Some(slot);
        Ok(slot)
    }

    /// Number of logical pages.
    pub fn page_count(&self) -> usize {
        self.entries.len()
    }

    /// Number of page switches committed.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Current physical location of logical page `idx` (from the persistent
    /// table, so recovery tests can verify the mapping survived).
    pub fn page_addr(&mut self, sys: &mut NearPmSystem, idx: usize) -> Result<VirtAddr> {
        let bytes = sys.persistent_read(self.table.offset(idx as u64 * 8), 8)?;
        Ok(VirtAddr(u64::from_le_bytes(
            bytes.try_into().expect("8 bytes"),
        )))
    }

    /// Reads `len` bytes at `offset` inside logical page `idx`.
    pub fn read(
        &mut self,
        sys: &mut NearPmSystem,
        idx: usize,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>> {
        let page = self.entries[idx];
        sys.cpu_read(self.thread, page.offset(offset), len, Region::Application)
    }

    /// Updates `data` at `offset` inside logical page `idx` crash-consistently:
    /// shadow-copy the page, apply the update to the shadow, persist it, and
    /// switch the page-table entry.
    ///
    /// This is the **serial** one-site-at-a-time path — each update runs
    /// fault → copy → write → sync → switch to completion before the next
    /// begins. It is retained as the differential oracle for the split-phase
    /// [`ShadowPaging::update_many`] pipeline (same pattern as
    /// `schedule::oracle` and `submit_single_stage`): both produce
    /// byte-identical PM images by construction, only the modeled overlap
    /// differs.
    pub fn update(
        &mut self,
        sys: &mut NearPmSystem,
        idx: usize,
        offset: u64,
        data: &[u8],
    ) -> Result<()> {
        assert!(
            offset + data.len() as u64 <= PM_PAGE,
            "update crosses page boundary"
        );
        let old_page = self.entries[idx];
        let slot = self.shadow_slot(sys, idx)?;
        let shadow = slot.data;

        // 1. Copy the existing page to the shadow (NearPM_shadowcpy or CPU,
        //    with the fault-handling overhead the paper attributes to shadow
        //    paging on the CPU side).
        let latency = sys.latency().clone();
        sys.cpu_overhead(
            self.thread,
            "page-fault",
            latency.cpu_page_fault_ns,
            Region::CcPageFault,
        )?;
        let handle = if sys.mode().uses_ndp() {
            Some(sys.offload(
                self.thread,
                self.pool,
                NearPmOp::ShadowCopy {
                    src: old_page,
                    dst: shadow,
                    len: PM_PAGE,
                },
                &[],
            )?)
        } else {
            sys.cpu_copy(
                self.thread,
                old_page,
                shadow,
                PM_PAGE,
                Region::CcDataMovement,
            )?;
            None
        };

        // 2. Write the new value into the shadow page and persist it. The
        //    conflict with the in-flight shadow copy orders this correctly.
        sys.cpu_write_persist(self.thread, shadow.offset(offset), data, Region::AppPersist)?;

        // 3. Mode-specific synchronization before the page switch.
        if let Some(h) = &handle {
            match sys.mode() {
                ExecMode::NearPmMdSync => {
                    sys.sw_sync(self.thread, &[h])?;
                }
                ExecMode::NearPmMd => {
                    sys.delayed_sync(&[h])?;
                }
                _ => {}
            }
        }

        // 4. Switch the page-table entry (8-byte atomic persist).
        sys.cpu_write_persist(
            self.thread,
            self.table.offset(idx as u64 * 8),
            &shadow.raw().to_le_bytes(),
            Region::CcCommit,
        )?;

        if let Some(h) = &handle {
            sys.release(&[h]);
        }
        // The old home page becomes this logical page's bound spare: the
        // pair flip-flops for the lifetime of the mechanism instead of
        // cycling through the shared free list.
        self.spares[idx] = Some(LogSlot {
            meta: slot.meta,
            data: old_page,
            device: slot.device,
        });
        self.entries[idx] = shadow;
        self.switches += 1;
        Ok(())
    }

    /// Split-phase (post-all / complete-later) form of
    /// [`ShadowPaging::update`] over several update sites — the pipelined
    /// transaction path.
    ///
    /// The sites are partitioned into rounds of **distinct** logical pages
    /// (a second update of the same page must copy the already-switched
    /// version, so it waits for the next round). Within a round:
    ///
    /// 1. every page's fault handling + shadow copy is posted back to back,
    ///    so all of the round's copies are in flight together;
    /// 2. the new values land in the shadows (each write is ordered after
    ///    its own copy by the in-flight conflict check, overlapping with the
    ///    sibling copies);
    /// 3. **one** mode-specific synchronization covers the whole group;
    /// 4. the page-table entries switch.
    ///
    /// For a single site this produces exactly the serial path's task graph.
    pub fn update_many<D: AsRef<[u8]>>(
        &mut self,
        sys: &mut NearPmSystem,
        sites: &[(usize, u64, D)],
    ) -> Result<()> {
        let mut order: Vec<usize> = (0..sites.len()).collect();
        while !order.is_empty() {
            let mut round = Vec::new();
            let mut later = Vec::new();
            let mut seen = HashSet::new();
            for i in order {
                if seen.insert(sites[i].0) {
                    round.push(i);
                } else {
                    later.push(i);
                }
            }
            self.update_round(sys, sites, &round)?;
            order = later;
        }
        Ok(())
    }

    /// One round of [`ShadowPaging::update_many`]: `round` indexes sites
    /// with pairwise-distinct logical pages.
    fn update_round<D: AsRef<[u8]>>(
        &mut self,
        sys: &mut NearPmSystem,
        sites: &[(usize, u64, D)],
        round: &[usize],
    ) -> Result<()> {
        let latency = sys.latency().clone();
        let mut batch = OffloadBatch::with_capacity(round.len());
        let mut slots: Vec<LogSlot> = Vec::with_capacity(round.len());

        // Phase 1: fault handling + shadow copy per page, all posted before
        // any wait is materialized.
        for &i in round {
            let (idx, offset, ref data) = sites[i];
            let data = data.as_ref();
            assert!(
                offset + data.len() as u64 <= PM_PAGE,
                "update crosses page boundary"
            );
            let old_page = self.entries[idx];
            let slot = self.shadow_slot(sys, idx)?;
            sys.cpu_overhead(
                self.thread,
                "page-fault",
                latency.cpu_page_fault_ns,
                Region::CcPageFault,
            )?;
            if sys.mode().uses_ndp() {
                sys.offload_into(
                    &mut batch,
                    self.thread,
                    self.pool,
                    NearPmOp::ShadowCopy {
                        src: old_page,
                        dst: slot.data,
                        len: PM_PAGE,
                    },
                    &[],
                )?;
            } else {
                sys.cpu_copy(
                    self.thread,
                    old_page,
                    slot.data,
                    PM_PAGE,
                    Region::CcDataMovement,
                )?;
            }
            slots.push(slot);
        }

        // Phase 2: the new values land in the shadow pages (the conflict
        // with each in-flight shadow copy orders them correctly).
        for (k, &i) in round.iter().enumerate() {
            let (_, offset, ref data) = sites[i];
            sys.cpu_write_persist(
                self.thread,
                slots[k].data.offset(offset),
                data.as_ref(),
                Region::AppPersist,
            )?;
        }

        // Phase 3: one mode-specific synchronization over the whole group
        // before any page switch.
        match sys.mode() {
            ExecMode::NearPmMdSync => {
                sys.sw_sync_batch(self.thread, &batch)?;
            }
            ExecMode::NearPmMd => {
                sys.delayed_sync_batch(&batch)?;
            }
            _ => {}
        }

        // Phase 4: switch the page-table entries (8-byte atomic persists);
        // the old pages become the spares for later updates.
        for (k, &i) in round.iter().enumerate() {
            let (idx, _, _) = sites[i];
            let shadow = slots[k].data;
            sys.cpu_write_persist(
                self.thread,
                self.table.offset(idx as u64 * 8),
                &shadow.raw().to_le_bytes(),
                Region::CcCommit,
            )?;
            let old_page = self.entries[idx];
            self.spares[idx] = Some(LogSlot {
                meta: slots[k].meta,
                data: old_page,
                device: slots[k].device,
            });
            self.entries[idx] = shadow;
            self.switches += 1;
        }
        sys.release_batch(&mut batch);
        Ok(())
    }

    /// Recovery: re-reads the persistent page table; every entry references a
    /// complete page by construction. Returns the recovered mapping.
    pub fn recover(&mut self, sys: &mut NearPmSystem) -> Result<Vec<VirtAddr>> {
        sys.begin_recovery()?;
        let mut mapping = Vec::with_capacity(self.entries.len());
        for i in 0..self.entries.len() {
            let bytes = sys.persistent_read(self.table.offset(i as u64 * 8), 8)?;
            let addr = VirtAddr(u64::from_le_bytes(bytes.try_into().expect("8 bytes")));
            mapping.push(addr);
        }
        self.entries = mapping.clone();
        sys.finish_recovery();
        Ok(mapping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nearpm_core::{ExecMode, SystemConfig};

    fn setup(mode: ExecMode) -> (NearPmSystem, PoolId) {
        let mut sys = NearPmSystem::new(SystemConfig::for_mode(mode).with_capacity(32 << 20));
        let pool = sys.create_pool("pages-test", 16 << 20).unwrap();
        (sys, pool)
    }

    #[test]
    fn checkpoint_commit_and_crash_recovery() {
        for mode in ExecMode::all() {
            let (mut sys, pool) = setup(mode);
            let data = sys.alloc(pool, 2 * PM_PAGE, PM_PAGE).unwrap();
            sys.cpu_write_persist(0, data, &vec![1u8; PM_PAGE as usize], Region::AppPersist)
                .unwrap();
            let mut ckpt = Checkpoint::new(&mut sys, pool, 0, 8).unwrap();

            // Epoch 0: update the page, then complete the epoch.
            ckpt.touch(&mut sys, data).unwrap();
            ckpt.update(&mut sys, data, &[2u8; 128]).unwrap();
            ckpt.advance_epoch(&mut sys).unwrap();
            assert_eq!(ckpt.epochs_completed(), 1);

            // Epoch 1: update again, crash before the epoch completes.
            ckpt.touch(&mut sys, data).unwrap();
            ckpt.update(&mut sys, data, &[3u8; 128]).unwrap();
            sys.crash();
            let restored = ckpt.recover(&mut sys).unwrap();
            assert_eq!(restored, 1, "mode {:?}", mode);
            // The page is back to its epoch-0 committed contents.
            assert_eq!(sys.persistent_read(data, 128).unwrap(), vec![2u8; 128]);
            assert_eq!(
                sys.persistent_read(data.offset(128), 16).unwrap(),
                vec![1u8; 16]
            );
        }
    }

    #[test]
    fn reattach_reads_epoch_from_system_metadata() {
        let (mut sys, pool) = setup(ExecMode::NearPmSd);
        let data = sys.alloc(pool, PM_PAGE, PM_PAGE).unwrap();
        let mut ckpt = Checkpoint::new(&mut sys, pool, 0, 4).unwrap();
        for _ in 0..3 {
            ckpt.touch(&mut sys, data).unwrap();
            ckpt.update(&mut sys, data, &[2u8; 64]).unwrap();
            ckpt.advance_epoch(&mut sys).unwrap();
        }
        // Each completed epoch lands in the system's persistent metadata…
        assert_eq!(sys.checkpoint_epoch(), 3);
        // …so a reattached manager resumes at the right epoch without being
        // told (no replay of the pre-crash run required).
        let ck2 = Checkpoint::reattach(&mut sys, pool, 0, 4).unwrap();
        assert_eq!(ck2.epoch(), 3);
        assert_eq!(ck2.epochs_completed(), 3);
    }

    #[test]
    fn checkpoint_only_snapshots_first_touch_per_epoch() {
        let (mut sys, pool) = setup(ExecMode::NearPmSd);
        let data = sys.alloc(pool, PM_PAGE, PM_PAGE).unwrap();
        let mut ckpt = Checkpoint::new(&mut sys, pool, 0, 4).unwrap();
        ckpt.touch(&mut sys, data).unwrap();
        ckpt.touch(&mut sys, data.offset(100)).unwrap();
        ckpt.touch(&mut sys, data.offset(2000)).unwrap();
        let report = sys.report();
        // Only one checkpoint-create offload despite three touches.
        assert_eq!(report.ndp_requests, 1);
    }

    #[test]
    fn shadow_paging_update_and_recovery_all_modes() {
        for mode in ExecMode::all() {
            let (mut sys, pool) = setup(mode);
            let mut shadow = ShadowPaging::new(&mut sys, pool, 0, 4, 8).unwrap();
            assert_eq!(shadow.page_count(), 4);
            // Initialize page 2 and update it.
            let p2 = shadow.entries[2];
            sys.cpu_write_persist(0, p2, &vec![5u8; PM_PAGE as usize], Region::AppPersist)
                .unwrap();
            shadow.update(&mut sys, 2, 64, &[9u8; 32]).unwrap();
            assert_eq!(shadow.switches(), 1);

            // The logical page now shows the new data at offset 64 and the old
            // data elsewhere.
            assert_eq!(shadow.read(&mut sys, 2, 64, 32).unwrap(), vec![9u8; 32]);
            assert_eq!(shadow.read(&mut sys, 2, 0, 32).unwrap(), vec![5u8; 32]);

            // Crash and recover: the persistent page table still references a
            // complete page with the committed update.
            sys.crash();
            let mapping = shadow.recover(&mut sys).unwrap();
            let page2 = mapping[2];
            assert_eq!(
                sys.persistent_read(page2.offset(64), 32).unwrap(),
                vec![9u8; 32]
            );
            assert_eq!(sys.persistent_read(page2, 32).unwrap(), vec![5u8; 32]);
            assert!(sys.report().ppo_violations.is_empty(), "mode {:?}", mode);
        }
    }

    #[test]
    fn shadow_paging_crash_mid_update_preserves_old_page() {
        let (mut sys, pool) = setup(ExecMode::NearPmMd);
        let mut shadow = ShadowPaging::new(&mut sys, pool, 0, 2, 8).unwrap();
        let p0 = shadow.entries[0];
        sys.cpu_write_persist(0, p0, &vec![7u8; PM_PAGE as usize], Region::AppPersist)
            .unwrap();
        let before = shadow.page_addr(&mut sys, 0).unwrap();

        // Start an update but crash before the page switch: copy the page and
        // write into the shadow, then fail.
        let device = sys.device_of(p0).unwrap();
        let slot = shadow.arena.acquire(device).unwrap();
        sys.offload(
            0,
            pool,
            NearPmOp::ShadowCopy {
                src: p0,
                dst: slot.data,
                len: PM_PAGE,
            },
            &[],
        )
        .unwrap();
        sys.cpu_write(0, slot.data.offset(8), &[1u8; 8], Region::AppPersist)
            .unwrap();
        sys.crash();

        let mapping = shadow.recover(&mut sys).unwrap();
        assert_eq!(
            mapping[0], before,
            "page table must still reference the old page"
        );
        assert_eq!(sys.persistent_read(mapping[0], 32).unwrap(), vec![7u8; 32]);
    }

    /// Differential oracle: the split-phase `update_many` pipeline and the
    /// serial one-site-at-a-time `update` path must produce byte-identical
    /// logical page contents and equal switch counts in every mode — even
    /// when the site list revisits the same logical page (which the
    /// pipelined path must chain across rounds, not collapse). Only the
    /// modeled overlap may differ.
    #[test]
    fn shadow_update_many_matches_serial_oracle_with_duplicate_pages() {
        for mode in ExecMode::all() {
            let run = |pipelined: bool| {
                let (mut sys, pool) = setup(mode);
                let mut shadow = ShadowPaging::new(&mut sys, pool, 0, 4, 16).unwrap();
                for i in 0..4 {
                    let page = shadow.entries[i];
                    sys.cpu_write_persist(
                        0,
                        page,
                        &vec![i as u8 + 1; PM_PAGE as usize],
                        Region::AppPersist,
                    )
                    .unwrap();
                }
                // Page 0 is updated three times (twice at overlapping
                // offsets): the pipelined path must preserve per-page order.
                let sites: Vec<(usize, u64, Vec<u8>)> = vec![
                    (0, 64, vec![0xA1; 32]),
                    (2, 0, vec![0xB2; 64]),
                    (0, 128, vec![0xC3; 32]),
                    (3, 256, vec![0xD4; 16]),
                    (0, 64, vec![0xE5; 16]),
                ];
                if pipelined {
                    shadow.update_many(&mut sys, &sites).unwrap();
                } else {
                    for (idx, offset, data) in &sites {
                        shadow.update(&mut sys, *idx, *offset, data).unwrap();
                    }
                }
                let report = sys.report();
                assert!(report.ppo_violations.is_empty(), "mode {mode:?}");
                let mut pages = Vec::new();
                for i in 0..4 {
                    pages.push(shadow.read(&mut sys, i, 0, PM_PAGE as usize).unwrap());
                }
                (pages, shadow.switches(), report.makespan)
            };
            let (pipe_pages, pipe_switches, pipe_makespan) = run(true);
            let (serial_pages, serial_switches, serial_makespan) = run(false);
            assert_eq!(
                pipe_pages, serial_pages,
                "mode {mode:?}: logical page contents diverged"
            );
            assert_eq!(pipe_switches, serial_switches, "mode {mode:?}");
            assert!(
                pipe_makespan <= serial_makespan,
                "mode {mode:?}: pipelining must not slow the txn down \
                 ({pipe_makespan} vs {serial_makespan})"
            );
        }
    }

    #[test]
    fn nearpm_is_faster_for_page_mechanisms() {
        let run = |mode: ExecMode| {
            let (mut sys, pool) = setup(mode);
            let data = sys.alloc(pool, 4 * PM_PAGE, PM_PAGE).unwrap();
            let mut ckpt = Checkpoint::new(&mut sys, pool, 0, 16).unwrap();
            for e in 0..4u64 {
                for p in 0..4u64 {
                    let page = data.offset(p * PM_PAGE);
                    ckpt.touch(&mut sys, page).unwrap();
                    sys.cpu_compute(0, 500.0).unwrap();
                    ckpt.update(&mut sys, page.offset(e * 64), &[e as u8; 64])
                        .unwrap();
                }
                ckpt.advance_epoch(&mut sys).unwrap();
            }
            sys.report()
        };
        let base = run(ExecMode::CpuBaseline);
        let md = run(ExecMode::NearPmMd);
        assert!(md.makespan < base.makespan);
        assert!(md.cc_time < base.cc_time);
    }
}
