//! # nearpm-pmdk — a PMDK-like persistent-object layer
//!
//! A small `libpmemobj`-flavoured layer on top of the NearPM system: open a
//! pool, allocate persistent objects, and mutate them inside failure-atomic
//! transactions. Transactions are undo-log based (the default in PMDK) and
//! therefore transparently benefit from NearPM offloading when the system is
//! configured with NearPM devices — exactly how the paper integrates its API
//! into PMDK.
//!
//! ```
//! use nearpm_core::{NearPmSystem, SystemConfig};
//! use nearpm_pmdk::ObjPool;
//!
//! let mut sys = NearPmSystem::new(SystemConfig::nearpm_sd().with_capacity(8 << 20));
//! let mut pool = ObjPool::create(&mut sys, "example", 4 << 20).unwrap();
//! let obj = pool.alloc(&mut sys, 64).unwrap();
//!
//! pool.tx(&mut sys, |tx, sys| {
//!     tx.write(sys, obj, b"persistent and failure atomic")?;
//!     Ok(())
//! })
//! .unwrap();
//! assert_eq!(&pool.read(&mut sys, obj, 10).unwrap(), b"persistent");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nearpm_cc::UndoLog;
use nearpm_core::{NearPmSystem, PoolId, Region, Result, VirtAddr};

/// A persistent object pool with transactional updates.
#[derive(Debug)]
pub struct ObjPool {
    pool: PoolId,
    undo: UndoLog,
    thread: usize,
}

/// Transaction context passed to the closure of [`ObjPool::tx`].
#[derive(Debug)]
pub struct Tx<'a> {
    undo: &'a mut UndoLog,
    thread: usize,
}

impl<'a> Tx<'a> {
    /// Adds `addr..addr+len` to the transaction (undo-logs the old contents).
    /// Equivalent to PMDK's `pmemobj_tx_add_range`.
    pub fn add_range(&mut self, sys: &mut NearPmSystem, addr: VirtAddr, len: u64) -> Result<()> {
        self.undo.log_range(sys, addr, len)
    }

    /// Transactionally writes `data` at `addr`: the range is added to the
    /// transaction first, then updated in place.
    pub fn write(&mut self, sys: &mut NearPmSystem, addr: VirtAddr, data: &[u8]) -> Result<()> {
        self.undo.log_range(sys, addr, data.len() as u64)?;
        self.undo.update(sys, addr, data)
    }

    /// Reads inside the transaction (no logging needed for reads).
    pub fn read(&mut self, sys: &mut NearPmSystem, addr: VirtAddr, len: usize) -> Result<Vec<u8>> {
        sys.cpu_read(self.thread, addr, len, Region::Application)
    }
}

impl ObjPool {
    /// Creates a pool of `size` bytes named `name` and its transaction log.
    pub fn create(sys: &mut NearPmSystem, name: &str, size: u64) -> Result<Self> {
        let pool = sys.create_pool(name, size)?;
        let undo = UndoLog::new(sys, pool, 0, 32)?;
        Ok(ObjPool {
            pool,
            undo,
            thread: 0,
        })
    }

    /// The underlying pool id.
    pub fn id(&self) -> PoolId {
        self.pool
    }

    /// Allocates a persistent object of `len` bytes.
    pub fn alloc(&mut self, sys: &mut NearPmSystem, len: u64) -> Result<VirtAddr> {
        sys.alloc(self.pool, len, 64)
    }

    /// Frees a persistent object.
    pub fn free(&mut self, sys: &mut NearPmSystem, addr: VirtAddr) -> Result<()> {
        sys.free(self.pool, addr)
    }

    /// Reads `len` bytes of an object outside any transaction.
    pub fn read(&mut self, sys: &mut NearPmSystem, addr: VirtAddr, len: usize) -> Result<Vec<u8>> {
        sys.cpu_read(self.thread, addr, len, Region::Application)
    }

    /// Non-transactional durable write (store + persist).
    pub fn write_persist(
        &mut self,
        sys: &mut NearPmSystem,
        addr: VirtAddr,
        data: &[u8],
    ) -> Result<()> {
        sys.cpu_write_persist(self.thread, addr, data, Region::AppPersist)?;
        Ok(())
    }

    /// Runs `body` as a failure-atomic transaction: all writes performed
    /// through the [`Tx`] either survive a crash completely or are rolled
    /// back by [`ObjPool::recover`].
    pub fn tx<F>(&mut self, sys: &mut NearPmSystem, body: F) -> Result<()>
    where
        F: FnOnce(&mut Tx<'_>, &mut NearPmSystem) -> Result<()>,
    {
        self.undo.begin(sys)?;
        let mut tx = Tx {
            undo: &mut self.undo,
            thread: self.thread,
        };
        body(&mut tx, sys)?;
        self.undo.commit(sys)
    }

    /// Number of committed transactions.
    pub fn committed(&self) -> u64 {
        self.undo.committed()
    }

    /// Rolls back any transaction that was interrupted by a crash. Returns
    /// the number of undo entries applied.
    pub fn recover(&mut self, sys: &mut NearPmSystem) -> Result<usize> {
        self.undo.recover(sys)
    }

    /// Access to the underlying undo log (used by advanced callers and the
    /// crash-injection tests).
    pub fn undo_log_mut(&mut self) -> &mut UndoLog {
        &mut self.undo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nearpm_core::{ExecMode, SystemConfig};

    fn setup(mode: ExecMode) -> NearPmSystem {
        NearPmSystem::new(SystemConfig::for_mode(mode).with_capacity(16 << 20))
    }

    #[test]
    fn transactional_write_commits() {
        for mode in ExecMode::all() {
            let mut sys = setup(mode);
            let mut pool = ObjPool::create(&mut sys, "t", 8 << 20).unwrap();
            let obj = pool.alloc(&mut sys, 128).unwrap();
            pool.write_persist(&mut sys, obj, &[1; 128]).unwrap();
            pool.tx(&mut sys, |tx, sys| tx.write(sys, obj, &[2; 128]))
                .unwrap();
            assert_eq!(pool.read(&mut sys, obj, 128).unwrap(), vec![2; 128]);
            assert_eq!(pool.committed(), 1);
            assert!(sys.report().ppo_violations.is_empty(), "{mode:?}");
        }
    }

    #[test]
    fn crash_inside_tx_rolls_back() {
        let mut sys = setup(ExecMode::NearPmMd);
        let mut pool = ObjPool::create(&mut sys, "t", 8 << 20).unwrap();
        let obj = pool.alloc(&mut sys, 64).unwrap();
        pool.write_persist(&mut sys, obj, &[7; 64]).unwrap();

        // Manually drive a transaction that crashes before commit.
        pool.undo_log_mut().begin(&mut sys).unwrap();
        pool.undo_log_mut().log_range(&mut sys, obj, 64).unwrap();
        pool.undo_log_mut().update(&mut sys, obj, &[9; 64]).unwrap();
        sys.crash();
        let rolled = pool.recover(&mut sys).unwrap();
        assert!(rolled >= 1);
        assert_eq!(sys.persistent_read(obj, 64).unwrap(), vec![7; 64]);
    }

    #[test]
    fn multiple_objects_in_one_tx() {
        let mut sys = setup(ExecMode::NearPmSd);
        let mut pool = ObjPool::create(&mut sys, "t", 8 << 20).unwrap();
        let a = pool.alloc(&mut sys, 64).unwrap();
        let b = pool.alloc(&mut sys, 64).unwrap();
        pool.tx(&mut sys, |tx, sys| {
            tx.write(sys, a, &[1; 64])?;
            tx.write(sys, b, &[2; 64])?;
            assert_eq!(tx.read(sys, a, 64)?, vec![1; 64]);
            Ok(())
        })
        .unwrap();
        assert_eq!(pool.read(&mut sys, a, 64).unwrap(), vec![1; 64]);
        assert_eq!(pool.read(&mut sys, b, 64).unwrap(), vec![2; 64]);
    }

    #[test]
    fn alloc_and_free_roundtrip() {
        let mut sys = setup(ExecMode::CpuBaseline);
        let mut pool = ObjPool::create(&mut sys, "t", 4 << 20).unwrap();
        let a = pool.alloc(&mut sys, 256).unwrap();
        pool.free(&mut sys, a).unwrap();
        let b = pool.alloc(&mut sys, 256).unwrap();
        assert_eq!(a, b, "freed space is reused");
    }
}
