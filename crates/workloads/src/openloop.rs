//! Open-loop traffic driver: arrival processes, admission, and per-request
//! tail latency.
//!
//! Every other harness in the workspace is closed-loop — N clients, a fixed
//! number of operations each, the next request issued only when the previous
//! one retired. Closed loops can never exhibit queueing collapse: offered
//! load is capped by service rate by construction. This module layers an
//! **open-loop** driver over the same [`Runner`] machinery: request arrival
//! times come from a seeded stochastic process ([`ArrivalProcess`]), each
//! request is admitted at its arrival time via a zero-duration pinned marker
//! on the serving CPU thread ([`NearPmSystem::admit_request_at`]), and the
//! request's latency is measured **from arrival to commit retire** — any
//! wait in the modeled host backlog (the server still busy with earlier
//! requests) and any stall at a full device FIFO count against it.
//!
//! Per-request latencies feed the log-bucketed
//! [`LatencyHistogram`](nearpm_sim::LatencyHistogram) (≤ 1 % relative
//! error, O(1) record) plus an optional exact sample retained per window for
//! differential tests ([`LatencyWindow::matches_exact_oracle`]). The
//! `fig22_open_loop` bench sweeps offered load per CC mechanism over this
//! driver to produce the throughput-vs-offered-load and p99-vs-offered-load
//! knee curves.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use nearpm_cc::Mechanism;
use nearpm_core::{ExecMode, Result, RunReport};
use nearpm_sim::{exact_percentile, LatencyHistogram, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::runner::{RunOptions, Runner, Workload};

/// Picoseconds per second (the simulator's clock base).
const PS_PER_S: f64 = 1e12;

/// Salt xor-ed into the run seed for the arrival stream, so arrivals and
/// workload content draw from independent deterministic streams.
const ARRIVAL_SEED_SALT: u64 = 0x6F1D_8A3C_5E77_21B9;

/// A seeded request arrival process.
///
/// All three processes are parameterized by their **long-run mean rate**
/// ([`ArrivalProcess::mean_rate_ops_per_s`]), which is what the offered-load
/// sweep plots on its x axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: i.i.d. exponential gaps at `rate_ops_per_s`.
    Poisson {
        /// Mean arrival rate (operations per second).
        rate_ops_per_s: f64,
    },
    /// On/off bursts: during a burst, arrivals are Poisson at
    /// `peak_factor × rate`; burst lengths are geometric with mean
    /// `mean_burst` requests; off gaps are exponential, sized so the
    /// long-run mean rate is exactly `rate_ops_per_s`.
    Bursty {
        /// Long-run mean arrival rate (operations per second).
        rate_ops_per_s: f64,
        /// In-burst rate multiplier (≥ 1; 1 degenerates to Poisson).
        peak_factor: f64,
        /// Mean burst length in requests (≥ 1).
        mean_burst: f64,
    },
    /// Multi-phase diurnal load: a nonhomogeneous Poisson process whose
    /// intensity swings sinusoidally between `rate` and
    /// `peak_factor × rate` with period `period_s`, sampled exactly by
    /// thinning against the peak intensity.
    Diurnal {
        /// Trough arrival rate (operations per second).
        rate_ops_per_s: f64,
        /// Peak-to-trough intensity ratio (≥ 1).
        peak_factor: f64,
        /// Period of one load cycle in (simulated) seconds.
        period_s: f64,
    },
}

impl ArrivalProcess {
    /// Poisson arrivals at `rate` operations per second.
    pub fn poisson(rate_ops_per_s: f64) -> Self {
        ArrivalProcess::Poisson { rate_ops_per_s }
    }

    /// Bursty on/off arrivals with long-run mean `rate_ops_per_s`.
    pub fn bursty(rate_ops_per_s: f64, peak_factor: f64, mean_burst: f64) -> Self {
        ArrivalProcess::Bursty {
            rate_ops_per_s,
            peak_factor: peak_factor.max(1.0),
            mean_burst: mean_burst.max(1.0),
        }
    }

    /// Sinusoidal diurnal arrivals between `rate` and `peak_factor × rate`.
    pub fn diurnal(rate_ops_per_s: f64, peak_factor: f64, period_s: f64) -> Self {
        ArrivalProcess::Diurnal {
            rate_ops_per_s,
            peak_factor: peak_factor.max(1.0),
            period_s,
        }
    }

    /// The long-run mean arrival rate of the process.
    pub fn mean_rate_ops_per_s(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_ops_per_s } => rate_ops_per_s,
            // Constructed so the on/off cycle averages exactly `rate`.
            ArrivalProcess::Bursty { rate_ops_per_s, .. } => rate_ops_per_s,
            // Intensity averages the sinusoid's midpoint.
            ArrivalProcess::Diurnal {
                rate_ops_per_s,
                peak_factor,
                ..
            } => rate_ops_per_s * (1.0 + (peak_factor - 1.0) / 2.0),
        }
    }

    /// Short name used in figure labels and JSON records.
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::Bursty { .. } => "bursty",
            ArrivalProcess::Diurnal { .. } => "diurnal",
        }
    }
}

/// Deterministic arrival-time generator: a seeded stream of monotone
/// non-decreasing [`SimTime`]s drawn from an [`ArrivalProcess`]. Identical
/// `(process, seed)` pairs replay the identical stream.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    rng: StdRng,
    now_ps: u64,
    /// Requests left in the current burst (bursty process only).
    burst_left: u64,
}

impl ArrivalGen {
    /// Creates a generator for `process` seeded with `seed`.
    pub fn new(process: ArrivalProcess, seed: u64) -> Self {
        ArrivalGen {
            process,
            rng: StdRng::seed_from_u64(seed),
            now_ps: 0,
            burst_left: 0,
        }
    }

    /// An exponential gap with the given rate, in picoseconds.
    fn exp_gap_ps(&mut self, rate_per_s: f64) -> u64 {
        let u: f64 = self.rng.gen();
        // u ∈ [0, 1) so 1 − u ∈ (0, 1] and the log is finite.
        let gap_s = -(1.0 - u).ln() / rate_per_s;
        (gap_s * PS_PER_S).round() as u64
    }

    /// A geometric burst length with the given mean (≥ 1).
    fn burst_len(&mut self, mean: f64) -> u64 {
        let p = (1.0 / mean).min(1.0);
        if p >= 1.0 {
            return 1;
        }
        let u: f64 = self.rng.gen();
        (((1.0 - u).ln() / (1.0 - p).ln()).floor() as u64).saturating_add(1)
    }

    /// The next arrival instant. Monotone non-decreasing.
    pub fn next_arrival(&mut self) -> SimTime {
        match self.process {
            ArrivalProcess::Poisson { rate_ops_per_s } => {
                self.now_ps += self.exp_gap_ps(rate_ops_per_s);
            }
            ArrivalProcess::Bursty {
                rate_ops_per_s,
                peak_factor,
                mean_burst,
            } => {
                if self.burst_left == 0 {
                    // Off period, then a fresh burst. The off gap's mean is
                    // what makes the cycle average the configured rate:
                    // L requests take L/(rate·peak) inside the burst, so the
                    // gap contributes the remaining (L/rate)(1 − 1/peak).
                    let off_mean_s = mean_burst / rate_ops_per_s * (1.0 - 1.0 / peak_factor);
                    if off_mean_s > 0.0 {
                        self.now_ps += self.exp_gap_ps(1.0 / off_mean_s);
                    }
                    self.burst_left = self.burst_len(mean_burst);
                }
                self.burst_left -= 1;
                self.now_ps += self.exp_gap_ps(rate_ops_per_s * peak_factor);
            }
            ArrivalProcess::Diurnal {
                rate_ops_per_s,
                peak_factor,
                period_s,
            } => {
                // Thinning: propose at the peak intensity, accept with
                // probability λ(t)/λ_max — exact for any λ(t) ≤ λ_max.
                let lambda_max = rate_ops_per_s * peak_factor;
                loop {
                    self.now_ps += self.exp_gap_ps(lambda_max);
                    let t_s = self.now_ps as f64 / PS_PER_S;
                    let phase = 0.5 * (1.0 + (std::f64::consts::TAU * t_s / period_s).sin());
                    let lambda_t = rate_ops_per_s * (1.0 + (peak_factor - 1.0) * phase);
                    let u: f64 = self.rng.gen();
                    if u * lambda_max <= lambda_t {
                        break;
                    }
                }
            }
        }
        SimTime::from_ps(self.now_ps)
    }
}

/// Options of one open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopOptions {
    /// Workload whose operations the requests execute.
    pub workload: Workload,
    /// Crash-consistency mechanism.
    pub mechanism: Mechanism,
    /// Execution mode (NearPM MD by default).
    pub mode: ExecMode,
    /// The arrival process.
    pub process: ArrivalProcess,
    /// Number of requests to generate.
    pub operations: usize,
    /// Server CPU threads; each request is dispatched to the thread whose
    /// CPU frees earliest (ties to the lowest index).
    pub threads: usize,
    /// RNG seed (workload content and arrivals draw independent streams).
    pub seed: u64,
    /// Request-FIFO depth per device (`None` keeps the prototype's 32).
    pub fifo_depth: Option<usize>,
    /// Number of equal-request-count latency windows in the report series.
    pub windows: usize,
    /// Retain the exact per-request latencies of every window (sorted
    /// oracle for histogram differentials; costs O(ops) memory).
    pub keep_exact: bool,
    /// Stream-compact the PPO trace at every window boundary (the
    /// million-op path; incompatible with whole-trace oracles).
    pub compact_trace: bool,
}

impl OpenLoopOptions {
    /// Options for `operations` requests of `workload` under `mechanism`
    /// from `process`: NearPM MD, 4 server threads, seed 1, 8 windows.
    pub fn new(
        workload: Workload,
        mechanism: Mechanism,
        process: ArrivalProcess,
        operations: usize,
    ) -> Self {
        OpenLoopOptions {
            workload,
            mechanism,
            mode: ExecMode::NearPmMd,
            process,
            operations: operations.max(1),
            threads: 4,
            seed: 1,
            fifo_depth: None,
            windows: 8,
            keep_exact: false,
            compact_trace: false,
        }
    }

    /// Overrides the execution mode.
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Overrides the server thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the request-FIFO depth of every device.
    pub fn with_fifo_depth(mut self, depth: usize) -> Self {
        self.fifo_depth = Some(depth.max(1));
        self
    }

    /// Overrides the window count of the latency series.
    pub fn with_windows(mut self, windows: usize) -> Self {
        self.windows = windows.max(1);
        self
    }

    /// Retains exact per-window latencies for oracle differentials.
    pub fn with_exact_oracle(mut self, keep: bool) -> Self {
        self.keep_exact = keep;
        self
    }

    /// Enables streaming trace compaction at window boundaries.
    pub fn with_trace_compaction(mut self, compact: bool) -> Self {
        self.compact_trace = compact;
        self
    }
}

/// One window of the open-loop latency series (an equal-request-count slice
/// of the run).
#[derive(Debug, Clone)]
pub struct LatencyWindow {
    /// Arrival time of the window's first request.
    pub from: SimTime,
    /// Arrival time of the next window's first request (exclusive; the
    /// run's makespan for the last window).
    pub to: SimTime,
    /// Log-bucketed latency histogram of the window's requests.
    pub hist: LatencyHistogram,
    /// Exact (unsorted) per-request latencies, kept when the run was
    /// configured with [`OpenLoopOptions::with_exact_oracle`].
    pub exact: Option<Vec<SimDuration>>,
    /// Requests admitted into any device FIFO during `[from, to)`.
    pub fifo_admissions: usize,
    /// Highest device-FIFO occupancy during `[from, to)`.
    pub fifo_occupancy: usize,
    /// Incremental [`RunReport`] sampled when the window closed.
    pub report: RunReport,
}

impl LatencyWindow {
    /// Differential check of the window histogram against the exact sorted
    /// oracle: for each reported quantile, the histogram must return the
    /// inclusive upper edge of the bucket holding the exact percentile
    /// (capped at the exact max) — equality, not a tolerance band — and the
    /// counts and max must agree exactly. `None` when the run did not keep
    /// exact samples.
    pub fn matches_exact_oracle(&self) -> Option<bool> {
        let exact = self.exact.as_ref()?;
        if exact.is_empty() {
            return Some(self.hist.is_empty());
        }
        let mut sorted = exact.clone();
        sorted.sort_unstable();
        let max = *sorted.last().unwrap();
        let quantiles_ok = [0.5, 0.99, 0.999].iter().all(|&q| {
            let ex = exact_percentile(&sorted, q);
            let expect = LatencyHistogram::bucket_upper(LatencyHistogram::bucket_of(ex))
                .min(self.hist.max());
            self.hist.percentile(q) == expect
        });
        Some(quantiles_ok && self.hist.count() == sorted.len() as u64 && self.hist.max() == max)
    }
}

/// Result of one open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// The arrival process driven.
    pub process: ArrivalProcess,
    /// Long-run mean offered load of the process (operations per second).
    pub offered_ops_per_s: f64,
    /// Achieved throughput: operations over the run's makespan.
    pub achieved_ops_per_s: f64,
    /// Requests executed.
    pub operations: usize,
    /// Final system report (its `request_latency` summary is read off the
    /// same histogram as [`OpenLoopReport::hist`]).
    pub report: RunReport,
    /// Whole-run per-request latency histogram.
    pub hist: LatencyHistogram,
    /// Equal-request-count latency windows.
    pub windows: Vec<LatencyWindow>,
    /// Highest number of requests that had arrived but not yet begun
    /// service at any arrival instant — the modeled host backlog's high
    /// watermark.
    pub max_backlog: usize,
    /// Mean wait from arrival to service start (the host-backlog share of
    /// the mean latency).
    pub mean_admission_wait: SimDuration,
    /// Arrival time of the last request.
    pub last_arrival: SimTime,
}

impl OpenLoopReport {
    /// Whole-run p99 latency.
    pub fn p99(&self) -> SimDuration {
        self.hist.p99()
    }

    /// Achieved throughput as a fraction of offered load (≈ 1 below the
    /// knee, < 1 above it).
    pub fn delivery_ratio(&self) -> f64 {
        if self.offered_ops_per_s > 0.0 {
            self.achieved_ops_per_s / self.offered_ops_per_s
        } else {
            f64::NAN
        }
    }
}

/// Per-window accumulation state of the driver.
struct WindowAccum {
    first_arrival: Option<SimTime>,
    hist: LatencyHistogram,
    exact: Option<Vec<SimDuration>>,
    report: Option<RunReport>,
}

/// Runs `options.operations` requests of the workload as open-loop traffic
/// and reports per-request tail latency.
///
/// Per request: draw the arrival time, pick the server thread whose CPU
/// frees earliest, pin a zero-duration admission marker at the arrival
/// instant ([`NearPmSystem::admit_request_at`]) so service — including any
/// FIFO-full stall of the host control path — cannot begin earlier, execute
/// the operation through the shared [`Runner`] op flow, and record
/// `retire − arrival` into the histogram. All accounting is incremental
/// (span extrema over the timing columns, O(log n) FIFO window queries) —
/// no full-trace rescans, so million-op runs stay in the gate budget with
/// trace compaction on.
pub fn run_open_loop(options: &OpenLoopOptions) -> Result<OpenLoopReport> {
    let o = options;
    let mut run_opts = RunOptions::new(o.mode, o.mechanism, o.operations)
        .with_threads(o.threads)
        .with_seed(o.seed)
        .with_latency_tracking(true)
        .with_trace_compaction(o.compact_trace);
    if let Some(depth) = o.fifo_depth {
        run_opts = run_opts.with_fifo_depth(depth);
    }
    let runner = Runner::new(o.workload, run_opts);
    let mut sys = runner.build_system()?;
    let mut threads = runner.setup_threads(&mut sys)?;
    let mut arrivals = ArrivalGen::new(o.process, o.seed ^ ARRIVAL_SEED_SALT);

    let n = o.operations;
    let wcount = o.windows.max(1).min(n);
    let mut windows: Vec<WindowAccum> = (0..wcount)
        .map(|_| WindowAccum {
            first_arrival: None,
            hist: LatencyHistogram::new(),
            exact: o.keep_exact.then(Vec::new),
            report: None,
        })
        .collect();

    // Modeled host backlog: dispatch (service-start) instants of admitted
    // requests, min-first. An entry still present when a later request
    // arrives had not begun service by that arrival.
    let mut backlog: BinaryHeap<Reverse<u64>> = BinaryHeap::new();
    let mut max_backlog = 0usize;
    let mut total_wait = SimDuration::ZERO;
    let mut last_arrival = SimTime::ZERO;
    let mut current_window = 0usize;

    for req in 0..n {
        let arrival = arrivals.next_arrival();
        last_arrival = arrival;
        while let Some(&Reverse(d)) = backlog.peek() {
            if d <= arrival.as_ps() {
                backlog.pop();
            } else {
                break;
            }
        }

        let w = req * wcount / n;
        if w != current_window {
            // Window closed: snapshot the incremental report (this is also
            // the compaction point when trace compaction is on).
            windows[current_window].report = Some(sys.sample());
            current_window = w;
        }
        if windows[w].first_arrival.is_none() {
            windows[w].first_arrival = Some(arrival);
        }

        // Earliest-available server, ties to the lowest index.
        let t = (0..o.threads)
            .min_by_key(|&t| sys.cpu_available(t).as_ps())
            .unwrap_or(0);
        let span_from = sys.task_count();
        sys.admit_request_at(t, arrival);
        runner.run_one_op(&mut sys, &mut threads[t], t)?;

        let retire = sys.graph().max_finish_since(span_from);
        let latency = retire.since(arrival);
        sys.record_request_latency(latency);
        // Service start: the first real task after the admission marker.
        let dispatch = if sys.task_count() > span_from + 1 {
            sys.graph().min_start_since(span_from + 1)
        } else {
            arrival
        };
        total_wait += dispatch.since(arrival);
        backlog.push(Reverse(dispatch.as_ps()));
        max_backlog = max_backlog.max(backlog.len());

        windows[w].hist.record(latency);
        if let Some(exact) = windows[w].exact.as_mut() {
            exact.push(latency);
        }
    }

    runner.finish_epochs(&mut sys, &mut threads);
    windows[current_window].report = Some(sys.sample());
    let report = sys.report();
    let hist = sys.latency_histogram().clone();
    let makespan_end = SimTime::from_ps(report.makespan.as_ps());

    // Materialize the window series: bounds from consecutive first
    // arrivals, FIFO counters from the O(log m) windowed queries.
    let bounds: Vec<SimTime> = windows
        .iter()
        .map(|w| w.first_arrival.unwrap_or(SimTime::ZERO))
        .collect();
    let windows = windows
        .into_iter()
        .enumerate()
        .map(|(i, acc)| {
            let from = bounds[i];
            let to = bounds.get(i + 1).copied().unwrap_or(makespan_end).max(from);
            LatencyWindow {
                from,
                to,
                fifo_admissions: sys.fifo_admissions_in(from, to),
                fifo_occupancy: sys.fifo_occupancy_in(from, to),
                hist: acc.hist,
                exact: acc.exact,
                report: acc.report.expect("every window closed"),
            }
        })
        .collect();

    let achieved_ops_per_s = if report.makespan.as_secs() > 0.0 {
        n as f64 / report.makespan.as_secs()
    } else {
        0.0
    };
    Ok(OpenLoopReport {
        process: o.process,
        offered_ops_per_s: o.process.mean_rate_ops_per_s(),
        achieved_ops_per_s,
        operations: n,
        report,
        hist,
        windows,
        max_backlog,
        mean_admission_wait: SimDuration::from_ps(total_wait.as_ps() / n as u64),
        last_arrival,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn processes() -> [ArrivalProcess; 3] {
        [
            ArrivalProcess::poisson(1.0e6),
            ArrivalProcess::bursty(1.0e6, 4.0, 8.0),
            // Period chosen so a few thousand arrivals span many cycles
            // (the mean-rate bound is a time average over whole periods).
            ArrivalProcess::diurnal(1.0e6, 3.0, 1.0e-4),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Identical (process, seed) pairs replay the identical monotone
        /// stream; a different seed diverges.
        #[test]
        fn arrival_streams_replay_identical(seed in 0u64..1_000, pick in 0usize..3) {
            let process = processes()[pick];
            let mut a = ArrivalGen::new(process, seed);
            let mut b = ArrivalGen::new(process, seed);
            let sa: Vec<u64> = (0..500).map(|_| a.next_arrival().as_ps()).collect();
            let sb: Vec<u64> = (0..500).map(|_| b.next_arrival().as_ps()).collect();
            prop_assert_eq!(&sa, &sb);
            prop_assert!(sa.windows(2).all(|w| w[0] <= w[1]), "arrivals must be monotone");
            let mut c = ArrivalGen::new(process, seed ^ 0xDEAD_BEEF);
            let sc: Vec<u64> = (0..500).map(|_| c.next_arrival().as_ps()).collect();
            prop_assert_ne!(sa, sc);
        }

        /// Every process's empirical rate over a long stream lands within
        /// ±15 % of its configured long-run mean.
        #[test]
        fn mean_rate_matches_configuration(seed in 0u64..1_000, pick in 0usize..3) {
            let process = processes()[pick];
            let mut g = ArrivalGen::new(process, seed);
            let n = 4_000u64;
            let mut last = SimTime::ZERO;
            for _ in 0..n {
                last = g.next_arrival();
            }
            let measured = n as f64 / (last.as_ps() as f64 / 1e12);
            let expected = process.mean_rate_ops_per_s();
            let ratio = measured / expected;
            prop_assert!(
                (0.85..1.15).contains(&ratio),
                "{}: measured {measured:.0} vs expected {expected:.0}",
                process.label()
            );
        }

        /// The bursty process actually bursts: off gaps (≥ 4× the in-burst
        /// mean gap) appear at roughly one per mean-burst-length requests.
        #[test]
        fn burst_lengths_hit_their_mean(seed in 0u64..1_000) {
            let (rate, peak, mean_burst) = (1.0e6, 4.0, 8.0);
            let mut g = ArrivalGen::new(ArrivalProcess::bursty(rate, peak, mean_burst), seed);
            let n = 4_000usize;
            let mut gaps = Vec::with_capacity(n);
            let mut prev = 0u64;
            for _ in 0..n {
                let t = g.next_arrival().as_ps();
                gaps.push(t - prev);
                prev = t;
            }
            let in_burst_mean_ps = 1e12 / (rate * peak);
            let long = gaps.iter().filter(|&&gap| gap as f64 > 4.0 * in_burst_mean_ps).count();
            let expected_offs = n as f64 / mean_burst;
            prop_assert!(
                (long as f64) > expected_offs * 0.5 && (long as f64) < expected_offs * 2.0,
                "{long} long gaps vs ~{expected_offs:.0} expected off periods"
            );
        }
    }

    fn small_options(rate: f64) -> OpenLoopOptions {
        OpenLoopOptions::new(
            Workload::MetaOps,
            Mechanism::Logging,
            ArrivalProcess::poisson(rate),
            96,
        )
        .with_threads(2)
        .with_windows(4)
        .with_seed(11)
    }

    /// Closed-loop service rate of the same workload/mechanism/thread
    /// setup, used to place loads below/above the knee.
    fn service_rate() -> f64 {
        let report = Runner::new(
            Workload::MetaOps,
            RunOptions::new(ExecMode::NearPmMd, Mechanism::Logging, 96)
                .with_threads(2)
                .with_seed(11),
        )
        .run()
        .unwrap();
        96.0 / report.makespan.as_secs()
    }

    #[test]
    fn below_knee_tracks_offered_load_and_above_knee_saturates() {
        let mu = service_rate();
        let low = run_open_loop(&small_options(0.2 * mu)).unwrap();
        assert!(
            low.delivery_ratio() > 0.9,
            "below knee: delivered {:.2} of offered",
            low.delivery_ratio()
        );
        let high = run_open_loop(&small_options(8.0 * mu)).unwrap();
        // Far above the knee the server is the bottleneck: throughput
        // saturates near the closed-loop service rate...
        assert!(
            high.achieved_ops_per_s < 1.5 * mu,
            "above knee: achieved {:.0} vs μ {:.0}",
            high.achieved_ops_per_s,
            mu
        );
        assert!(high.delivery_ratio() < 0.5);
        // ...and queueing shows up in the tail and the host backlog.
        assert!(high.p99() > low.p99());
        assert!(high.max_backlog > low.max_backlog);
        assert!(high.mean_admission_wait > low.mean_admission_wait);
        // Latency summaries flow through the system report too.
        let summary = high.report.request_latency.as_ref().unwrap();
        assert_eq!(summary.count, 96);
        assert_eq!(summary.p99, high.hist.p99());
    }

    #[test]
    fn window_histograms_match_exact_oracle() {
        let opts = small_options(2.0e5).with_exact_oracle(true);
        let report = run_open_loop(&opts).unwrap();
        assert_eq!(report.windows.len(), 4);
        let mut total = 0u64;
        for (i, w) in report.windows.iter().enumerate() {
            assert_eq!(
                w.matches_exact_oracle(),
                Some(true),
                "window {i} histogram diverged from the exact oracle"
            );
            assert!(w.from <= w.to);
            total += w.hist.count();
        }
        assert_eq!(total, 96);
        assert_eq!(report.hist.count(), 96);
    }

    #[test]
    fn open_loop_is_deterministic_and_compaction_invariant() {
        let opts = small_options(5.0e5);
        let a = run_open_loop(&opts).unwrap();
        let b = run_open_loop(&opts).unwrap();
        assert_eq!(a.report.makespan, b.report.makespan);
        assert_eq!(a.hist, b.hist);
        assert_eq!(a.max_backlog, b.max_backlog);
        // The compacting path (windows become compaction points) must not
        // change the simulated run at all.
        let compacted = run_open_loop(&opts.clone().with_trace_compaction(true)).unwrap();
        assert_eq!(compacted.report.makespan, a.report.makespan);
        assert_eq!(compacted.hist, a.hist);
        assert_eq!(compacted.report.fifo_stalls, a.report.fifo_stalls);
    }

    #[test]
    fn all_four_mechanisms_drive_open_loop() {
        for m in Mechanism::all_extended() {
            let opts =
                OpenLoopOptions::new(Workload::Hashmap, m, ArrivalProcess::poisson(1.0e5), 24)
                    .with_threads(2)
                    .with_windows(2);
            let report = run_open_loop(&opts).unwrap();
            assert_eq!(report.operations, 24);
            assert!(report.report.ppo_violations.is_empty(), "{m:?}");
            assert!(report.hist.count() == 24, "{m:?}");
        }
    }
}
