//! Workload specifications and the execution engine.
//!
//! The evaluation (Table 4) covers nine PM workloads. Each is described by a
//! [`WorkloadSpec`] capturing its per-operation footprint — how much
//! application compute it performs, and which persistent objects of which
//! sizes it updates per operation — derived from the workload's structure:
//! TPCC/TATP transactions, the PMDK example stores' node updates, and the
//! YCSB-driven key-value servers. The [`Runner`] executes a request stream
//! under any (mechanism, execution-mode) combination and returns the
//! system's [`RunReport`], from which every figure of the evaluation is
//! derived.

use nearpm_cc::{Checkpoint, Mechanism, RedoLog, ShadowPaging, UndoLog};
use nearpm_core::{
    ExecMode, MediaConfig, NearPmSystem, PoolId, Result, RunReport, SystemConfig, VirtAddr,
};
use nearpm_sim::PM_PAGE;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gen::{TatpGenerator, TatpTxn, TpccGenerator, TpccTxn, YcsbGenerator, YcsbOp, Zipfian};

/// The nine evaluated workloads (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// TPC-C transactions (from the SFR suite).
    Tpcc,
    /// TATP transactions (from the SFR suite).
    Tatp,
    /// PMDK example B-tree, random 64 B inserts.
    Btree,
    /// PMDK example red-black tree, random 64 B inserts.
    Rbtree,
    /// PMDK example skip list, random 64 B inserts.
    Skiplist,
    /// PMDK example hash map, random 64 B inserts.
    Hashmap,
    /// Memcached (PM port), 100 % write YCSB.
    Memcached,
    /// Redis (PM port), 100 % write YCSB.
    Redis,
    /// PmemKV (B+-tree backend), pmemkv-bench input.
    Pmemkv,
    /// Synthetic metadata-ops stream (beyond the paper): tiny 64 B updates
    /// with minimal compute, so each offloaded primitive's device program is
    /// dominated by metadata generation rather than DMA. The command rate
    /// per unit of device work is the highest of any workload, which makes
    /// the request-FIFO depth the binding resource — the fig21 sweep uses it
    /// to expose the control path's depth-4/8 knee that the long unit
    /// programs of memcached/redis hide. Not part of [`Workload::all`] (it
    /// is not one of the paper's nine Table 4 workloads).
    MetaOps,
}

impl Workload {
    /// All workloads in the paper's figure order.
    pub fn all() -> [Workload; 9] {
        [
            Workload::Tpcc,
            Workload::Tatp,
            Workload::Btree,
            Workload::Rbtree,
            Workload::Skiplist,
            Workload::Hashmap,
            Workload::Memcached,
            Workload::Redis,
            Workload::Pmemkv,
        ]
    }

    /// Short name used in figures.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Tpcc => "tpcc",
            Workload::Tatp => "tatp",
            Workload::Btree => "btree",
            Workload::Rbtree => "rbtree",
            Workload::Skiplist => "skiplist",
            Workload::Hashmap => "hashmap",
            Workload::Memcached => "memcached",
            Workload::Redis => "redis",
            Workload::Pmemkv => "pmemkv",
            Workload::MetaOps => "metaops",
        }
    }

    /// The per-operation footprint of the workload.
    pub fn spec(self) -> WorkloadSpec {
        match self {
            // TPC-C new-order/payment touch several rows per transaction.
            Workload::Tpcc => WorkloadSpec::new(self, 3600.0, &[(8, 128), (1, 512)], 4096),
            // TATP transactions update one tiny row: almost no room for
            // intra-transaction parallelism (the paper calls this out).
            Workload::Tatp => WorkloadSpec::new(self, 700.0, &[(1, 64)], 8192),
            Workload::Btree => WorkloadSpec::new(self, 900.0, &[(2, 256), (1, 64)], 4096),
            Workload::Rbtree => WorkloadSpec::new(self, 1000.0, &[(3, 128), (1, 64)], 4096),
            Workload::Skiplist => WorkloadSpec::new(self, 800.0, &[(2, 128), (1, 64)], 4096),
            Workload::Hashmap => WorkloadSpec::new(self, 600.0, &[(1, 128), (1, 64)], 4096),
            Workload::Memcached => WorkloadSpec::new(self, 1700.0, &[(1, 1024), (1, 64)], 2048),
            Workload::Redis => WorkloadSpec::new(self, 1900.0, &[(1, 512), (2, 64)], 2048),
            Workload::Pmemkv => WorkloadSpec::new(self, 1100.0, &[(1, 512), (1, 256)], 4096),
            // Pure metadata ops: one 64 B update behind ~150 ns of compute over a
            // small (512-object) working set.
            // The device program is a header write plus a single-cache-line
            // copy, so commands arrive much faster than units drain work
            // elsewhere — the FIFO, not the units, is what saturates.
            Workload::MetaOps => WorkloadSpec::new(self, 150.0, &[(1, 64)], 512),
        }
    }
}

/// Per-operation footprint of one workload.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Which workload this is.
    pub workload: Workload,
    /// Application compute per operation (ns), excluding crash consistency.
    pub compute_ns: f64,
    /// `(count, bytes)` persistent updates per operation.
    pub updates: Vec<(u32, u64)>,
    /// Number of distinct persistent objects in the working set.
    pub working_set: usize,
}

impl WorkloadSpec {
    fn new(
        workload: Workload,
        compute_ns: f64,
        updates: &[(u32, u64)],
        working_set: usize,
    ) -> Self {
        WorkloadSpec {
            workload,
            compute_ns,
            updates: updates.to_vec(),
            working_set,
        }
    }

    /// Bytes of persistent data updated per operation.
    pub fn bytes_per_op(&self) -> u64 {
        self.updates.iter().map(|(c, b)| *c as u64 * b).sum()
    }

    /// Largest single update size.
    pub fn max_update(&self) -> u64 {
        self.updates.iter().map(|(_, b)| *b).max().unwrap_or(64)
    }
}

/// Which transaction pipeline drives the crash-consistency mechanisms.
///
/// The selection only changes mechanisms whose per-site flow interleaves
/// CPU work and waits with the posting — today that is shadow paging
/// (`ShadowPaging::update_many` vs per-site `update`). Logging and
/// checkpointing post their offload groups split-phase under both settings
/// (their per-txn/per-epoch batches never wait mid-phase), so the pipelined
/// and oracle runs are identical there by construction; the differential
/// tests cover them as an invariance check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TxnPipeline {
    /// Split-phase (post-all / complete-later): every offload of an
    /// operation's phase is posted before the first wait — shadow paging
    /// batches all of an operation's page copies through
    /// `ShadowPaging::update_many`.
    #[default]
    SplitPhase,
    /// Serial oracle: one update site at a time, each driven to completion
    /// before the next (the pre-pipelining behavior). Retained for
    /// differential testing — both pipelines produce byte-identical PM
    /// images and equal PPO violation lists; only the modeled overlap
    /// differs.
    SerialOracle,
}

/// Options of one workload run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Execution mode (baseline / SD / MD-sync / MD).
    pub mode: ExecMode,
    /// Crash-consistency mechanism.
    pub mechanism: Mechanism,
    /// Number of operations (transactions / requests) to execute.
    pub operations: usize,
    /// Number of application threads (Figure 20 sweep).
    pub threads: usize,
    /// NearPM units per device (Figure 19 sweep).
    pub units_per_device: usize,
    /// Request-FIFO depth per device; `None` keeps the prototype's 32
    /// (Figure 21 sweep).
    pub fifo_depth: Option<usize>,
    /// Transaction pipeline (split-phase by default; serial oracle for
    /// differential tests).
    pub pipeline: TxnPipeline,
    /// RNG seed.
    pub seed: u64,
    /// Storage engine backing the PM media (heap by default).
    pub media: MediaConfig,
    /// Decode lanes per device front-end (1 in the prototype).
    pub decode_lanes: usize,
    /// Worker threads for the PPO checker's batch pair sweeps (serial fold
    /// when `<= 1`; any count yields the identical violation list).
    pub checker_workers: usize,
    /// Stream-compact the PPO trace at every report/sample (off by
    /// default; incompatible with whole-trace oracles).
    pub compact_trace: bool,
    /// Record per-operation latencies into the system's histogram and
    /// surface them as `RunReport::request_latency` (off by default;
    /// observation only — schedules stay byte-identical).
    pub track_latency: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            mode: ExecMode::CpuBaseline,
            mechanism: Mechanism::Logging,
            operations: 64,
            threads: 1,
            units_per_device: 4,
            fifo_depth: None,
            pipeline: TxnPipeline::SplitPhase,
            seed: 1,
            media: MediaConfig::default(),
            decode_lanes: 1,
            checker_workers: 1,
            compact_trace: false,
            track_latency: false,
        }
    }
}

impl RunOptions {
    /// Convenience constructor.
    pub fn new(mode: ExecMode, mechanism: Mechanism, operations: usize) -> Self {
        RunOptions {
            mode,
            mechanism,
            operations,
            ..Default::default()
        }
    }

    /// Overrides the thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Overrides the per-device unit count.
    pub fn with_units(mut self, units: usize) -> Self {
        self.units_per_device = units.max(1);
        self
    }

    /// Overrides the request-FIFO depth of every device.
    pub fn with_fifo_depth(mut self, depth: usize) -> Self {
        self.fifo_depth = Some(depth.max(1));
        self
    }

    /// Overrides the transaction pipeline.
    pub fn with_pipeline(mut self, pipeline: TxnPipeline) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the media storage engine (heap by default).
    pub fn with_media(mut self, media: MediaConfig) -> Self {
        self.media = media;
        self
    }

    /// Overrides the decode-lane count of every device front-end.
    pub fn with_decode_lanes(mut self, lanes: usize) -> Self {
        self.decode_lanes = lanes.max(1);
        self
    }

    /// Overrides the PPO checker's worker count (serial fold by default).
    pub fn with_checker_workers(mut self, workers: usize) -> Self {
        self.checker_workers = workers.max(1);
        self
    }

    /// Enables streaming trace compaction at every report/sample.
    pub fn with_trace_compaction(mut self, compact: bool) -> Self {
        self.compact_trace = compact;
        self
    }

    /// Enables per-operation latency tracking (observation only).
    pub fn with_latency_tracking(mut self, track: bool) -> Self {
        self.track_latency = track;
        self
    }
}

/// Per-thread crash-consistency state.
enum ThreadMechanism {
    Logging(UndoLog),
    Checkpointing(Checkpoint),
    Shadow(ShadowPaging),
    RedoLogging(RedoLog),
}

/// Per-thread workload state: working-set objects and request generators.
pub(crate) struct ThreadState {
    mechanism: ThreadMechanism,
    objects: Vec<VirtAddr>,
    pages: usize,
    ycsb: YcsbGenerator,
    tpcc: TpccGenerator,
    tatp: TatpGenerator,
    keys: Zipfian,
    rng: StdRng,
    ops_done: usize,
}

/// Executes a workload under a given configuration.
pub struct Runner {
    spec: WorkloadSpec,
    options: RunOptions,
}

impl Runner {
    /// Creates a runner for `workload` with `options`.
    pub fn new(workload: Workload, options: RunOptions) -> Self {
        Runner {
            spec: workload.spec(),
            options,
        }
    }

    /// Runs the workload and returns the system report.
    pub fn run(&self) -> Result<RunReport> {
        let (report, _sys) = self.run_with_system()?;
        Ok(report)
    }

    /// Runs the workload, returning both the report and the system (for
    /// tests that want to inspect the persistent image afterwards).
    pub fn run_with_system(&self) -> Result<(RunReport, NearPmSystem)> {
        self.run_with_system_observed(|_, _| {})
    }

    /// Runs the workload, sampling a mid-run [`RunReport`] every
    /// `sample_every` operations via [`NearPmSystem::sample`] — the in-run
    /// time-series driving. Sampling is pure observation (it only advances
    /// the cached checker), so the final report is identical to an
    /// unsampled run's; a differential test pins this.
    pub fn run_sampled(
        &self,
        sample_every: usize,
    ) -> Result<(Vec<RunReport>, RunReport, NearPmSystem)> {
        let every = sample_every.max(1);
        let mut samples = Vec::new();
        let (report, sys) = self.run_with_system_observed(|sys, done| {
            if done % every == 0 {
                samples.push(sys.sample());
            }
        })?;
        Ok((samples, report, sys))
    }

    /// [`Runner::run_with_system`] with an observation hook called after
    /// every completed operation (`observe(&mut sys, ops_done)`).
    pub fn run_with_system_observed(
        &self,
        mut observe: impl FnMut(&mut NearPmSystem, usize),
    ) -> Result<(RunReport, NearPmSystem)> {
        let o = &self.options;
        let mut sys = self.build_system()?;
        let mut threads = self.setup_threads(&mut sys)?;

        // Round-robin the operations over the threads (a closed-loop client
        // per thread).
        for op in 0..o.operations {
            let t = op % o.threads;
            let span_start = sys.task_count();
            self.run_one_op(&mut sys, &mut threads[t], t)?;
            // Pure observation (no-op unless latency tracking is on): the
            // op's admission-to-retire time is the span of the tasks it
            // just added.
            sys.record_span_latency(span_start);
            observe(&mut sys, op + 1);
        }

        self.finish_epochs(&mut sys, &mut threads);
        Ok((sys.report(), sys))
    }

    /// Builds the configured system for this runner's options (shared by the
    /// closed loop here and the open-loop driver).
    pub(crate) fn build_system(&self) -> Result<NearPmSystem> {
        let o = &self.options;
        let mut config = SystemConfig::for_mode(o.mode)
            .with_units(o.units_per_device)
            .with_cpu_threads(o.threads)
            .with_capacity(Self::CAPACITY)
            .with_media(o.media.clone())
            .with_decode_lanes(o.decode_lanes)
            .with_checker_workers(o.checker_workers)
            .with_trace_compaction(o.compact_trace)
            .with_latency_tracking(o.track_latency);
        if let Some(depth) = o.fifo_depth {
            config = config.with_fifo_depth(depth);
        }
        NearPmSystem::try_new(config)
    }

    /// Emulated PM capacity every run provisions.
    const CAPACITY: u64 = 96 << 20;

    /// Allocates pools, working-set objects, mechanism state, and request
    /// generators for every thread (shared by the closed loop and the
    /// open-loop driver).
    pub(crate) fn setup_threads(&self, sys: &mut NearPmSystem) -> Result<Vec<ThreadState>> {
        let o = &self.options;
        let capacity = Self::CAPACITY;

        // Redis shares one pool among all threads; Memcached and the rest use
        // one pool per thread (Section 8.3.1).
        let shared_pool = self.spec.workload == Workload::Redis || o.threads == 1;
        let pool_size = (capacity / (o.threads as u64 + 1)).min(32 << 20);
        let mut pools: Vec<PoolId> = Vec::new();
        if shared_pool {
            pools.push(sys.create_pool("pm-pool", pool_size)?);
        } else {
            for t in 0..o.threads {
                pools.push(sys.create_pool(&format!("pm-pool-{t}"), pool_size)?);
            }
        }

        // Per-thread state.
        let per_thread_objects = (self.spec.working_set / o.threads).max(16);
        let mut threads: Vec<ThreadState> = Vec::with_capacity(o.threads);
        for t in 0..o.threads {
            let pool = pools[if shared_pool { 0 } else { t }];
            let obj_size = self.spec.max_update().max(64);
            let mut objects = Vec::with_capacity(per_thread_objects);
            for _ in 0..per_thread_objects {
                objects.push(sys.alloc(pool, obj_size, 64)?);
            }
            let arena_pages = 48 / o.threads.max(1) + 16;
            let mechanism = match o.mechanism {
                Mechanism::Logging => {
                    ThreadMechanism::Logging(UndoLog::new(sys, pool, t, arena_pages)?)
                }
                Mechanism::Checkpointing => {
                    ThreadMechanism::Checkpointing(Checkpoint::new(sys, pool, t, arena_pages)?)
                }
                Mechanism::ShadowPaging => {
                    let pages = (per_thread_objects / 8).clamp(4, 32);
                    // Each logical page permanently binds one spare on its
                    // home device (flip-flop placement), so the arena must
                    // hold at least `pages` slots per device even when every
                    // page lands on the same one (the baseline's single
                    // virtual device).
                    ThreadMechanism::Shadow(ShadowPaging::new(
                        sys,
                        pool,
                        t,
                        pages,
                        arena_pages.max(pages),
                    )?)
                }
                Mechanism::RedoLogging => {
                    ThreadMechanism::RedoLogging(RedoLog::new(sys, pool, t, arena_pages)?)
                }
            };
            let seed = o.seed ^ (t as u64).wrapping_mul(0x9E37_79B9);
            threads.push(ThreadState {
                mechanism,
                objects,
                pages: (per_thread_objects / 8).clamp(4, 32),
                ycsb: YcsbGenerator::write_only(
                    per_thread_objects as u64,
                    self.spec.max_update(),
                    seed,
                ),
                tpcc: TpccGenerator::new(seed),
                tatp: TatpGenerator::new(per_thread_objects as u64, seed),
                keys: Zipfian::new(per_thread_objects as u64, seed),
                rng: StdRng::seed_from_u64(seed),
                ops_done: 0,
            });
        }
        Ok(threads)
    }

    /// Closes out open checkpoint epochs so their work is fully accounted
    /// (call once after the last operation).
    pub(crate) fn finish_epochs(&self, sys: &mut NearPmSystem, threads: &mut [ThreadState]) {
        for state in threads.iter_mut() {
            if let ThreadMechanism::Checkpointing(ckpt) = &mut state.mechanism {
                let _ = ckpt.advance_epoch(sys);
            }
        }
    }

    /// Runs one workload operation on one thread.
    pub(crate) fn run_one_op(
        &self,
        sys: &mut NearPmSystem,
        state: &mut ThreadState,
        thread: usize,
    ) -> Result<()> {
        // Determine the update sites and compute burst for this operation.
        let (compute_ns, update_sites) = self.op_shape(state);
        state.ops_done += 1;

        match &mut state.mechanism {
            ThreadMechanism::Logging(undo) => {
                undo.begin(sys)?;
                // Log every to-be-updated range first (independent logging
                // operations can proceed in parallel on NearPM).
                for (addr, len) in &update_sites {
                    undo.log_range(sys, *addr, *len)?;
                }
                sys.cpu_compute(thread, compute_ns)?;
                for (addr, len) in &update_sites {
                    let val = vec![state.rng.gen::<u8>(); *len as usize];
                    undo.update(sys, *addr, &val)?;
                }
                undo.commit(sys)?;
            }
            ThreadMechanism::Checkpointing(ckpt) => {
                // Checkpoint snapshots already post split-phase (no wait
                // until the epoch boundary), so both pipelines drive the
                // identical task graph here; the pipeline option only
                // restructures mechanisms with per-site waits (shadow
                // paging below).
                let addrs: Vec<VirtAddr> = update_sites.iter().map(|(addr, _)| *addr).collect();
                ckpt.touch_many(sys, &addrs)?;
                sys.cpu_compute(thread, compute_ns)?;
                for (addr, len) in &update_sites {
                    let val = vec![state.rng.gen::<u8>(); *len as usize];
                    ckpt.update(sys, *addr, &val)?;
                }
                // Epoch boundary every 16 operations.
                if state.ops_done.is_multiple_of(16) {
                    ckpt.advance_epoch(sys)?;
                }
            }
            ThreadMechanism::RedoLogging(redo) => {
                redo.begin(sys)?;
                // Redo logging computes the new values first, stages them
                // into the log, and applies in place only at commit.
                sys.cpu_compute(thread, compute_ns)?;
                for (addr, len) in &update_sites {
                    let val = vec![state.rng.gen::<u8>(); *len as usize];
                    redo.stage(sys, *addr, &val)?;
                }
                redo.commit(sys)?;
            }
            ThreadMechanism::Shadow(shadow) => {
                sys.cpu_compute(thread, compute_ns)?;
                let sites: Vec<(usize, u64, Vec<u8>)> = update_sites
                    .iter()
                    .map(|(addr, len)| {
                        let page_idx = (addr.raw() as usize / 64) % state.pages;
                        let offset = (addr.raw() % (PM_PAGE - len)) & !63;
                        (page_idx, offset, vec![state.rng.gen::<u8>(); *len as usize])
                    })
                    .collect();
                match self.options.pipeline {
                    TxnPipeline::SplitPhase => {
                        // All of the operation's page copies in flight
                        // together, one synchronization per round.
                        shadow.update_many(sys, &sites)?;
                    }
                    TxnPipeline::SerialOracle => {
                        for (page_idx, offset, val) in &sites {
                            shadow.update(sys, *page_idx, *offset, val)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Chooses the update sites and compute burst for the next operation of
    /// this workload.
    fn op_shape(&self, state: &mut ThreadState) -> (f64, Vec<(VirtAddr, u64)>) {
        let mut sites = Vec::new();
        let mut compute = self.spec.compute_ns;
        match self.spec.workload {
            Workload::Tpcc => match state.tpcc.next_txn() {
                TpccTxn::NewOrder { lines } => {
                    compute *= 1.2;
                    for _ in 0..lines.min(8) {
                        sites.push(self.pick(state, 128));
                    }
                    sites.push(self.pick(state, 512));
                }
                TpccTxn::Payment => {
                    for _ in 0..3 {
                        sites.push(self.pick(state, 128));
                    }
                }
                TpccTxn::Delivery => {
                    compute *= 0.8;
                    sites.push(self.pick(state, 128));
                }
            },
            Workload::Tatp => match state.tatp.next_txn() {
                TatpTxn::UpdateSubscriber { .. } => sites.push(self.pick(state, 64)),
                TatpTxn::UpdateLocation { .. } => sites.push(self.pick(state, 64)),
            },
            Workload::Memcached | Workload::Redis => match state.ycsb.next_op() {
                YcsbOp::Update { value_size, .. } => {
                    for (count, bytes) in &self.spec.updates {
                        for _ in 0..*count {
                            let b = if *bytes >= 512 {
                                value_size.max(*bytes)
                            } else {
                                *bytes
                            };
                            sites.push(self.pick(state, b));
                        }
                    }
                }
                YcsbOp::Read { .. } => {
                    sites.push(self.pick(state, 64));
                }
            },
            _ => {
                for (count, bytes) in &self.spec.updates {
                    for _ in 0..*count {
                        sites.push(self.pick(state, *bytes));
                    }
                }
            }
        }
        (compute, sites)
    }

    fn pick(&self, state: &mut ThreadState, len: u64) -> (VirtAddr, u64) {
        let idx = state.keys.next_key() as usize % state.objects.len();
        let len = len.min(self.spec.max_update().max(64));
        (state.objects[idx], len)
    }
}

/// Convenience: run one workload / mechanism / mode combination.
pub fn run(
    workload: Workload,
    mechanism: Mechanism,
    mode: ExecMode,
    operations: usize,
) -> Result<RunReport> {
    Runner::new(workload, RunOptions::new(mode, mechanism, operations)).run()
}

/// Reusable multi-client closed-loop driving, extracted from the hand-rolled
/// fig20 sweep so every figure can load the devices the same way.
///
/// `clients` closed-loop clients (one per CPU thread) each execute
/// `ops_per_client` operations of the workload through the shared [`Runner`];
/// NearPM runs are compared against an **equal-client** CPU baseline, so a
/// comparison's speedup is also its normalized throughput (equal work on both
/// sides). The unit-count and FIFO-depth knobs make this the engine of the
/// fig19 units×clients sweep and the fig21 FIFO-depth sweep as well.
#[derive(Debug, Clone)]
pub struct MultiClientHarness {
    workload: Workload,
    mechanism: Mechanism,
    clients: usize,
    ops_per_client: usize,
    units_per_device: usize,
    fifo_depth: Option<usize>,
    decode_lanes: usize,
    pipeline: TxnPipeline,
    seed: u64,
    media: MediaConfig,
    track_latency: bool,
    /// Memoized equal-work CPU baseline. The baseline is independent of the
    /// device-side knobs (units, FIFO depth, decode lanes), so sweeps over
    /// those — fig19/fig21 depth loops, the open-loop offered-load sweep —
    /// pay for it once per (workload, mechanism, clients) point. Builders
    /// that *do* change the baseline invalidate it; `Clone` carries it, so
    /// `harness.clone().with_fifo_depth(d)` reuses the parent's run.
    baseline_cache: std::cell::RefCell<Option<RunReport>>,
}

/// A NearPM run and the equal-client CPU baseline it is measured against.
#[derive(Debug, Clone)]
pub struct HarnessComparison {
    /// Equal-client CPU-baseline report.
    pub baseline: RunReport,
    /// The NearPM-mode report.
    pub nearpm: RunReport,
}

impl HarnessComparison {
    /// End-to-end speedup of the NearPM run over the equal-client baseline.
    /// Both sides execute identical work, so this is also the normalized
    /// throughput figure 20 reports.
    pub fn speedup(&self) -> f64 {
        self.nearpm.speedup_over(&self.baseline)
    }
}

impl MultiClientHarness {
    /// Harness for one workload/mechanism pair: 1 client, 32 ops/client,
    /// prototype units (4) and FIFO depth (32), seed 1.
    pub fn new(workload: Workload, mechanism: Mechanism) -> Self {
        MultiClientHarness {
            workload,
            mechanism,
            clients: 1,
            ops_per_client: 32,
            units_per_device: 4,
            fifo_depth: None,
            decode_lanes: 1,
            pipeline: TxnPipeline::default(),
            seed: 1,
            media: MediaConfig::default(),
            track_latency: false,
            baseline_cache: std::cell::RefCell::new(None),
        }
    }

    /// Drops the memoized baseline (builders whose knob feeds the baseline
    /// run call this; device-side knobs don't).
    fn invalidate_baseline(&mut self) {
        self.baseline_cache.get_mut().take();
    }

    /// Number of concurrent closed-loop clients.
    pub fn with_clients(mut self, clients: usize) -> Self {
        self.clients = clients.max(1);
        self.invalidate_baseline();
        self
    }

    /// Operations each client executes.
    pub fn with_ops_per_client(mut self, ops: usize) -> Self {
        self.ops_per_client = ops.max(1);
        self.invalidate_baseline();
        self
    }

    /// NearPM units per device (fig19 sweep).
    pub fn with_units(mut self, units: usize) -> Self {
        self.units_per_device = units.max(1);
        self
    }

    /// Request-FIFO depth per device (fig21 sweep).
    pub fn with_fifo_depth(mut self, depth: usize) -> Self {
        self.fifo_depth = Some(depth.max(1));
        self
    }

    /// Decode lanes per device front-end (1 by default; 2 gives each device
    /// a second decode stage for heavy multi-client loads).
    pub fn with_decode_lanes(mut self, lanes: usize) -> Self {
        self.decode_lanes = lanes.max(1);
        self
    }

    /// Transaction pipeline (split-phase by default).
    pub fn with_pipeline(mut self, pipeline: TxnPipeline) -> Self {
        self.pipeline = pipeline;
        self.invalidate_baseline();
        self
    }

    /// RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.invalidate_baseline();
        self
    }

    /// Media storage engine (heap by default).
    pub fn with_media(mut self, media: MediaConfig) -> Self {
        self.media = media;
        self.invalidate_baseline();
        self
    }

    /// Enables per-operation latency tracking on every run this harness
    /// drives (off by default; observation only).
    pub fn with_latency_tracking(mut self, track: bool) -> Self {
        self.track_latency = track;
        self.invalidate_baseline();
        self
    }

    /// The run options this harness drives `mode` with.
    pub fn options(&self, mode: ExecMode) -> RunOptions {
        let mut o = RunOptions::new(mode, self.mechanism, self.ops_per_client * self.clients)
            .with_threads(self.clients)
            .with_units(self.units_per_device)
            .with_decode_lanes(self.decode_lanes)
            .with_pipeline(self.pipeline)
            .with_seed(self.seed)
            .with_media(self.media.clone())
            .with_latency_tracking(self.track_latency);
        if let Some(depth) = self.fifo_depth {
            o = o.with_fifo_depth(depth);
        }
        o
    }

    /// Runs the workload under `mode` with this harness's client load.
    pub fn run_mode(&self, mode: ExecMode) -> Result<RunReport> {
        Runner::new(self.workload, self.options(mode)).run()
    }

    /// Runs the equal-client CPU baseline — once. The baseline is
    /// independent of the unit-count, FIFO-depth, and decode-lane knobs, so
    /// sweeps over those (and the open-loop offered-load sweep) reuse one
    /// memoized baseline per (workload, mechanism, clients) point instead
    /// of recomputing it at every level.
    pub fn baseline(&self) -> Result<RunReport> {
        if let Some(cached) = self.baseline_cache.borrow().as_ref() {
            return Ok(cached.clone());
        }
        let report = self.run_mode(ExecMode::CpuBaseline)?;
        *self.baseline_cache.borrow_mut() = Some(report.clone());
        Ok(report)
    }

    /// Runs `mode` and the equal-client baseline, pairing them for
    /// normalized-throughput / speedup reporting.
    pub fn compare(&self, mode: ExecMode) -> Result<HarnessComparison> {
        Ok(HarnessComparison {
            baseline: self.baseline()?,
            nearpm: self.run_mode(mode)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_specs_are_populated() {
        for w in Workload::all() {
            let s = w.spec();
            assert!(s.compute_ns > 0.0);
            assert!(s.bytes_per_op() > 0);
            assert!(!w.name().is_empty());
        }
        // TATP is the smallest-footprint workload.
        assert!(Workload::Tatp.spec().bytes_per_op() <= Workload::Tpcc.spec().bytes_per_op());
    }

    #[test]
    fn every_workload_runs_under_every_mechanism() {
        for w in [Workload::Tatp, Workload::Hashmap, Workload::Redis] {
            for m in Mechanism::all_extended() {
                let report = run(w, m, ExecMode::NearPmMd, 8).unwrap();
                assert!(report.ppo_violations.is_empty(), "{w:?}/{m:?}");
                assert!(report.makespan.as_ns() > 0.0);
            }
        }
    }

    /// Latency tracking is pure observation: every non-latency report field
    /// is identical with and without it, and the tracked run records
    /// exactly one latency per operation.
    #[test]
    fn latency_tracking_is_pure_observation() {
        let opts = RunOptions::new(ExecMode::NearPmMd, Mechanism::Logging, 24)
            .with_threads(2)
            .with_seed(7);
        let plain = Runner::new(Workload::Memcached, opts.clone())
            .run()
            .unwrap();
        let tracked = Runner::new(Workload::Memcached, opts.with_latency_tracking(true))
            .run()
            .unwrap();
        let summary = tracked.request_latency.clone().expect("tracked summary");
        assert_eq!(summary.count, 24);
        assert!(summary.p50 <= summary.p99 && summary.p99 <= summary.p999);
        assert!(summary.p999.as_ns() > 0.0);
        let mut scrubbed = tracked;
        scrubbed.request_latency = None;
        assert_eq!(scrubbed, plain);
    }

    /// The harness memoizes the equal-work CPU baseline: repeated calls and
    /// device-knob variations reuse it, and it stays correct (identical to
    /// a fresh run).
    #[test]
    fn harness_baseline_is_cached_across_device_knobs() {
        let harness = MultiClientHarness::new(Workload::Hashmap, Mechanism::Logging)
            .with_clients(2)
            .with_ops_per_client(8);
        let first = harness.baseline().unwrap();
        let again = harness.baseline().unwrap();
        assert_eq!(first, again);
        // Device-side knobs keep the cache — and the cached value equals
        // what a fresh harness at that knob setting would compute.
        let deep = harness.clone().with_fifo_depth(4);
        assert!(deep.baseline_cache.borrow().is_some());
        let fresh = MultiClientHarness::new(Workload::Hashmap, Mechanism::Logging)
            .with_clients(2)
            .with_ops_per_client(8)
            .with_fifo_depth(4)
            .baseline()
            .unwrap();
        assert_eq!(deep.baseline().unwrap(), fresh);
        // Baseline-feeding knobs invalidate it.
        let reseeded = harness.clone().with_seed(9);
        assert!(reseeded.baseline_cache.borrow().is_none());
    }

    #[test]
    fn nearpm_md_beats_baseline_on_logging_workloads() {
        for w in [Workload::Tpcc, Workload::Btree, Workload::Memcached] {
            let base = run(w, Mechanism::Logging, ExecMode::CpuBaseline, 24).unwrap();
            let md = run(w, Mechanism::Logging, ExecMode::NearPmMd, 24).unwrap();
            let speedup = md.speedup_over(&base);
            assert!(speedup > 1.0, "{w:?}: end-to-end speedup {speedup}");
            let cc_speedup = md.cc_speedup_over(&base);
            assert!(cc_speedup > 1.5, "{w:?}: cc speedup {cc_speedup}");
        }
    }

    #[test]
    fn baseline_cc_overhead_is_substantial() {
        let base = run(
            Workload::Btree,
            Mechanism::ShadowPaging,
            ExecMode::CpuBaseline,
            24,
        )
        .unwrap();
        assert!(base.cc_fraction() > 0.3, "{}", base.cc_fraction());
    }

    #[test]
    fn multithreaded_run_produces_valid_report() {
        let opts = RunOptions::new(ExecMode::NearPmMd, Mechanism::Logging, 32).with_threads(4);
        let report = Runner::new(Workload::Memcached, opts).run().unwrap();
        assert!(report.ppo_violations.is_empty());
        assert!(report.makespan.as_ns() > 0.0);
    }

    /// fig20 regression (the paper's multithread claim): NearPM MD must stay
    /// at or above the equal-thread CPU baseline's throughput at 8 and 16
    /// threads. With the single-stage front-end this dropped to ~0.2-0.5x —
    /// the dispatcher serialized decode, conflict waits, and sync behind one
    /// resource. The full mechanism/workload matrix runs in the release-mode
    /// `fig20_smoke` CI gate; this in-tree test covers the worst regressing
    /// combination at reduced ops.
    #[test]
    fn fig20_shape_normalized_throughput_at_scale() {
        for threads in [8usize, 16] {
            let ops = 16 * threads;
            let base = Runner::new(
                Workload::Memcached,
                RunOptions::new(ExecMode::CpuBaseline, Mechanism::Logging, ops)
                    .with_threads(threads),
            )
            .run()
            .unwrap();
            let md = Runner::new(
                Workload::Memcached,
                RunOptions::new(ExecMode::NearPmMd, Mechanism::Logging, ops).with_threads(threads),
            )
            .run()
            .unwrap();
            let norm = base.makespan.ratio(md.makespan);
            assert!(
                norm >= 1.0,
                "memcached/logging at {threads} threads: {norm:.3}x normalized throughput"
            );
            assert!(md.ppo_violations.is_empty());
        }
    }

    /// The harness must drive exactly the run the hand-rolled option builder
    /// drives: same options → same deterministic report.
    #[test]
    fn harness_matches_hand_rolled_options() {
        let harness = MultiClientHarness::new(Workload::Memcached, Mechanism::Logging)
            .with_clients(4)
            .with_ops_per_client(8)
            .with_units(2)
            .with_seed(3);
        let by_harness = harness.run_mode(ExecMode::NearPmMd).unwrap();
        let by_hand = Runner::new(
            Workload::Memcached,
            RunOptions::new(ExecMode::NearPmMd, Mechanism::Logging, 32)
                .with_threads(4)
                .with_units(2)
                .with_seed(3),
        )
        .run()
        .unwrap();
        assert_eq!(by_harness.makespan, by_hand.makespan);
        assert_eq!(by_harness.ndp_bytes_moved, by_hand.ndp_bytes_moved);
    }

    #[test]
    fn harness_comparison_reports_speedup_over_equal_client_baseline() {
        let cmp = MultiClientHarness::new(Workload::Memcached, Mechanism::Logging)
            .with_clients(4)
            .with_ops_per_client(8)
            .compare(ExecMode::NearPmMd)
            .unwrap();
        assert!(cmp.baseline.makespan.as_ns() > 0.0);
        assert!(cmp.nearpm.ppo_violations.is_empty());
        assert!(cmp.speedup() > 0.0);
        // Equal work on both sides: speedup is the normalized throughput.
        assert!((cmp.speedup() - cmp.baseline.makespan.ratio(cmp.nearpm.makespan)).abs() < 1e-12);
    }

    /// The FIFO-depth override must reach the device model: occupancy is
    /// capped at the configured depth, and a contended shallow FIFO stalls.
    #[test]
    fn fifo_depth_override_reaches_the_devices() {
        let report = MultiClientHarness::new(Workload::Memcached, Mechanism::Logging)
            .with_clients(8)
            .with_ops_per_client(8)
            .with_fifo_depth(2)
            .run_mode(ExecMode::NearPmMd)
            .unwrap();
        assert!(report.fifo_high_watermark <= 2);
        assert!(report.ppo_violations.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Runner::new(
            Workload::Hashmap,
            RunOptions::new(ExecMode::NearPmSd, Mechanism::Logging, 16).with_seed(5),
        )
        .run()
        .unwrap();
        let b = Runner::new(
            Workload::Hashmap,
            RunOptions::new(ExecMode::NearPmSd, Mechanism::Logging, 16).with_seed(5),
        )
        .run()
        .unwrap();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.ndp_bytes_moved, b.ndp_bytes_moved);
    }
}
