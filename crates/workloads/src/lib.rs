//! # nearpm-workloads — evaluation workloads
//!
//! The nine PM workloads of the paper's evaluation (Table 4): TPCC and TATP
//! transaction processing, the four PMDK example key-value structures
//! (btree, rbtree, skiplist, hashmap), the Redis- and Memcached-like key-value
//! servers driven by 100 %-write YCSB, and PmemKV.
//!
//! Each workload runs under any combination of crash-consistency mechanism
//! (logging, checkpointing, shadow paging) and execution mode (CPU baseline,
//! NearPM SD, NearPM MD SW-sync, NearPM MD), producing the
//! [`RunReport`](nearpm_core::RunReport)s from which the benchmark harness in
//! `nearpm-bench` regenerates every figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crashpoint;
pub mod gen;
pub mod openloop;
pub mod restart;
pub mod runner;

pub use crashpoint::{
    explore, explore_matrix, CcMech, ExplorationReport, ExplorerConfig, PipelineMode,
};
pub use gen::{TatpGenerator, TatpTxn, TpccGenerator, TpccTxn, YcsbGenerator, YcsbOp, Zipfian};
pub use openloop::{
    run_open_loop, ArrivalGen, ArrivalProcess, LatencyWindow, OpenLoopOptions, OpenLoopReport,
};
pub use restart::{
    child_main, count_boundaries, drop_and_reopen, verify_restarted_recovery, RestartOutcome,
    RestartSpec, CHILD_ENV,
};
pub use runner::{
    run, HarnessComparison, MultiClientHarness, RunOptions, Runner, TxnPipeline, Workload,
    WorkloadSpec,
};
