//! # Process-restartable crash recovery
//!
//! The in-process explorer ([`crate::crashpoint`]) proves the recovery
//! invariants against a model whose "persistent" image lives in the crashed
//! process's heap. This module closes the loop with **real** durability:
//! the workload runs over a file-backed media image ([`MediaConfig::File`]),
//! the process dies abruptly at an exact [`CrashPlan`] boundary, a **fresh
//! process** (or a fresh system instance, for the in-process variant used by
//! unit tests) reopens the image from disk, reattaches the mechanism, runs
//! `recover()`, and proves the same three invariants:
//!
//! 1. the recovered application image is a legal committed prefix,
//! 2. the post-recovery trace is PPO-clean,
//! 3. a second crash + recovery is a no-op.
//!
//! Plus one invariant the in-process explorer cannot express:
//!
//! 4. **durability** — the bytes the fresh process finds on disk are exactly
//!    the bytes an in-process oracle holds at the same boundary (every media
//!    write is applied at primitive call time, so the image a dying process
//!    leaves behind equals the image a surviving one would hold).
//!
//! The kill-and-reopen flow is driven by a parent process (the `media_smoke`
//! gate) that re-executes its own binary with [`RestartSpec::to_env`] in the
//! environment; the child calls [`child_main`], runs to the armed boundary,
//! and `abort()`s. Unit tests use [`run_to_crash_in_process`], which drops
//! the crashed system instead of the whole process — the on-disk image is
//! identical either way, because `FileMedia` writes through on every store.

use crate::crashpoint::{self, CcMech, Driver, ExplorerConfig, PipelineMode};
use nearpm_core::{
    BoundaryKind, CrashPlan, ExecMode, MediaConfig, NearPmSystem, Result, SystemConfig, SystemError,
};
use std::path::PathBuf;

/// PM capacity of every restart run (matches the in-process explorer).
const CAPACITY: u64 = 32 << 20;

/// Environment variable that marks a process as a restart child. A binary
/// that wants to host children checks this at the top of `main` and calls
/// [`child_main`] when it is set.
pub const CHILD_ENV: &str = "NEARPM_RESTART_CHILD";

const ENV_MECH: &str = "NEARPM_RESTART_MECH";
const ENV_PIPELINE: &str = "NEARPM_RESTART_PIPELINE";
const ENV_MODE: &str = "NEARPM_RESTART_MODE";
const ENV_UNITS: &str = "NEARPM_RESTART_UNITS";
const ENV_BOUNDARY: &str = "NEARPM_RESTART_BOUNDARY";
const ENV_DIR: &str = "NEARPM_RESTART_DIR";

/// One restart-recovery scenario: which cell of the crashpoint matrix to
/// run, which boundary to die at, and where the file-backed image lives.
#[derive(Debug, Clone, PartialEq)]
pub struct RestartSpec {
    /// Mechanism under test.
    pub mech: CcMech,
    /// Pipelined or serial unit shape.
    pub pipeline: PipelineMode,
    /// Execution mode.
    pub mode: ExecMode,
    /// Committed units the uninterrupted run would execute.
    pub units: usize,
    /// 0-based boundary the child dies at.
    pub boundary: u64,
    /// Directory holding the device files and manifest.
    pub dir: PathBuf,
}

fn mode_code(mode: ExecMode) -> &'static str {
    match mode {
        ExecMode::CpuBaseline => "baseline",
        ExecMode::NearPmSd => "sd",
        ExecMode::NearPmMdSync => "mdsync",
        ExecMode::NearPmMd => "md",
    }
}

fn parse_mode(s: &str) -> Option<ExecMode> {
    Some(match s {
        "baseline" => ExecMode::CpuBaseline,
        "sd" => ExecMode::NearPmSd,
        "mdsync" => ExecMode::NearPmMdSync,
        "md" => ExecMode::NearPmMd,
        _ => return None,
    })
}

fn parse_mech(s: &str) -> Option<CcMech> {
    CcMech::ALL.into_iter().find(|m| m.label() == s)
}

fn parse_pipeline(s: &str) -> Option<PipelineMode> {
    PipelineMode::ALL.into_iter().find(|p| p.label() == s)
}

impl RestartSpec {
    /// The explorer config this spec drives, with the file backend attached.
    pub fn config(&self) -> ExplorerConfig {
        let mut cfg = ExplorerConfig::new(self.mech, self.pipeline, self.mode).with_media(
            MediaConfig::File {
                dir: self.dir.clone(),
            },
        );
        cfg.units = self.units;
        cfg
    }

    /// Same cell on the heap backend (the oracle side of the differential).
    fn heap_config(&self) -> ExplorerConfig {
        let mut cfg = ExplorerConfig::new(self.mech, self.pipeline, self.mode);
        cfg.units = self.units;
        cfg
    }

    /// The system config a fresh process reopens the image with.
    fn system_config(&self) -> SystemConfig {
        SystemConfig::for_mode(self.mode).with_capacity(CAPACITY)
    }

    /// Serializes the spec into the environment variables [`from_env`]
    /// reads, plus the [`CHILD_ENV`] marker.
    pub fn to_env(&self) -> Vec<(String, String)> {
        vec![
            (CHILD_ENV.into(), "1".into()),
            (ENV_MECH.into(), self.mech.label().into()),
            (ENV_PIPELINE.into(), self.pipeline.label().into()),
            (ENV_MODE.into(), mode_code(self.mode).into()),
            (ENV_UNITS.into(), self.units.to_string()),
            (ENV_BOUNDARY.into(), self.boundary.to_string()),
            (ENV_DIR.into(), self.dir.display().to_string()),
        ]
    }

    /// Reconstructs a spec from the current process environment; `None`
    /// when [`CHILD_ENV`] is absent or any variable fails to parse.
    pub fn from_env() -> Option<RestartSpec> {
        std::env::var(CHILD_ENV).ok()?;
        Some(RestartSpec {
            mech: parse_mech(&std::env::var(ENV_MECH).ok()?)?,
            pipeline: parse_pipeline(&std::env::var(ENV_PIPELINE).ok()?)?,
            mode: parse_mode(&std::env::var(ENV_MODE).ok()?)?,
            units: std::env::var(ENV_UNITS).ok()?.parse().ok()?,
            boundary: std::env::var(ENV_BOUNDARY).ok()?.parse().ok()?,
            dir: PathBuf::from(std::env::var(ENV_DIR).ok()?),
        })
    }
}

/// Counts the crash boundaries of the spec's cell (on the heap backend, so
/// it never touches `spec.dir`); boundary numbering is identical on every
/// backend because arming happens after setup in every run.
pub fn count_boundaries(spec: &RestartSpec) -> Result<u64> {
    let mut drv = Driver::new(&spec.heap_config(), false)?;
    drv.sys.arm_crash_plan(CrashPlan::count_only());
    for u in 0..spec.units {
        drv.run_unit(u)?;
    }
    let counter = drv.sys.disarm_crash_plan().expect("counting plan armed");
    Ok(counter.observed_total())
}

/// Runs the spec's workload over the file-backed image up to the armed
/// boundary, leaving the crashed image (and the geometry manifest) on disk.
/// Returns `true` when the crash plan fired. This is the child's body; unit
/// tests call it directly and drop the system in place of killing a process.
pub fn run_to_crash_in_process(spec: &RestartSpec) -> Result<bool> {
    let mut drv = Driver::new(&spec.config(), false)?;
    // The manifest is geometry metadata, written once at setup; for a
    // file-backed space `persist_to` detects the in-place image and only
    // writes the manifest + syncs.
    drv.sys.persist_to(&spec.dir)?;
    drv.sys
        .arm_crash_plan(CrashPlan::at_boundary(spec.boundary));
    for u in 0..spec.units {
        match drv.run_unit(u) {
            Ok(()) => {
                if drv.sys.is_crashed() {
                    break;
                }
            }
            Err(SystemError::Crashed) => break,
            Err(e) => return Err(e),
        }
    }
    Ok(drv.sys.is_crashed())
}

/// Entry point for a restart child process: runs to the armed boundary and
/// dies abruptly — `abort()`, not a clean exit, so nothing between the
/// media writes and process death can "help" durability. Exits with code 3
/// when the boundary never fired and 4 on an unexpected error, so the
/// parent can tell a mis-specified boundary from a real crash.
pub fn child_main(spec: &RestartSpec) -> ! {
    match run_to_crash_in_process(spec) {
        Ok(true) => std::process::abort(),
        Ok(false) => std::process::exit(3),
        Err(e) => {
            eprintln!("restart child failed: {e}");
            std::process::exit(4)
        }
    }
}

/// Outcome of verifying one restarted recovery.
#[derive(Debug, Clone)]
pub struct RestartOutcome {
    /// Units known committed before the crash.
    pub units_committed: usize,
    /// Boundary kind that fired (from the in-process oracle replay).
    pub fired: Option<BoundaryKind>,
    /// Human-readable invariant failures; empty on success.
    pub failures: Vec<String>,
}

impl RestartOutcome {
    /// True when every invariant held.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Verifies a restarted recovery: reopens the image a dead (or dropped)
/// run left in `spec.dir`, reattaches the mechanism, recovers, and checks
/// the four invariants (durability differential, committed prefix,
/// PPO-clean, idempotence). The committed-unit progress and the expected
/// crashed image come from an in-process replay of the same boundary on the
/// heap backend — the run is deterministic and backend-independent, so the
/// heap replay is the oracle for what the dying process must have left
/// behind.
pub fn verify_restarted_recovery(spec: &RestartSpec) -> Result<RestartOutcome> {
    let mut failures = Vec::new();

    // Oracle run (uncrashed): the legal committed-prefix images.
    let heap_cfg = spec.heap_config();
    let mut oracle_drv = Driver::new(&heap_cfg, false)?;
    let mut oracle = vec![oracle_drv.app_image()?];
    for u in 0..spec.units {
        oracle_drv.run_unit(u)?;
        oracle.push(oracle_drv.app_image()?);
    }

    // In-process replay of the same boundary on the heap backend: committed
    // progress, fired kind, and the expected on-disk image.
    let mut replay = Driver::new(&heap_cfg, false)?;
    replay
        .sys
        .arm_crash_plan(CrashPlan::at_boundary(spec.boundary));
    let mut units_committed = 0;
    for u in 0..spec.units {
        match replay.run_unit(u) {
            Ok(()) => {
                units_committed = u + 1;
                if replay.sys.is_crashed() {
                    break;
                }
            }
            Err(SystemError::Crashed) => break,
            Err(e) => return Err(e),
        }
    }
    let fired = replay.sys.disarm_crash_plan().and_then(|p| p.fired_kind());
    if !replay.sys.is_crashed() {
        return Ok(RestartOutcome {
            units_committed,
            fired,
            failures: vec![format!(
                "boundary {} never fired in the oracle replay",
                spec.boundary
            )],
        });
    }

    // Fresh system over the on-disk image; starts in the crashed state.
    let reopened = NearPmSystem::reopen_from(spec.system_config(), &spec.dir)?;

    // Invariant 4 (durability): the dying process's image is byte-identical
    // to the in-process oracle's at the same boundary.
    for d in 0..reopened.media_count() {
        if reopened.device_image(d) != replay.sys.device_image(d) {
            failures.push(format!(
                "device {d}: on-disk image diverges from the in-process crash image"
            ));
        }
    }

    // The checkpoint epoch rides in the reopened system (read back from the
    // manifest); the replay's `units_committed` is only needed for the
    // legal-image set below.
    let mut drv = Driver::reattach(&heap_cfg, reopened)?;

    // Invariant 1: the recovered image is a legal committed prefix.
    let outcome = drv.recover()?;
    let image = drv.app_image()?;
    let legal = drv.legal_images(&oracle, units_committed);
    if !legal.contains(&image) {
        failures.push(format!(
            "recovered image matches none of the {} legal committed-prefix images \
             at progress {units_committed}",
            legal.len()
        ));
    }

    // Invariant 2: the post-recovery trace is PPO-clean.
    let violations = drv.sys.report().ppo_violations;
    if !violations.is_empty() {
        failures.push(format!(
            "{} PPO violations after restarted recovery",
            violations.len()
        ));
    }

    // Invariant 3: a second crash + recovery is a no-op.
    drv.sys.crash();
    let second = drv.recover()?;
    if second.work != 0 {
        failures.push(format!("second recovery re-did {} entries", second.work));
    }
    if let (Some(m1), Some(m2)) = (&outcome.mapping, &second.mapping) {
        if m1 != m2 {
            failures.push("second recovery changed the page table".into());
        }
    }
    let image2 = drv.app_image()?;
    if image2 != image {
        failures.push("second recovery changed the image".into());
    }

    Ok(RestartOutcome {
        units_committed,
        fired,
        failures,
    })
}

/// Convenience: the crash-then-verify round trip entirely in-process (the
/// crashed system is dropped instead of the process dying). Exercises the
/// same reopen/reattach/recover path as the kill-and-reopen flow; only the
/// process boundary differs.
pub fn drop_and_reopen(spec: &RestartSpec) -> Result<RestartOutcome> {
    if !run_to_crash_in_process(spec)? {
        return Ok(RestartOutcome {
            units_committed: 0,
            fired: None,
            failures: vec![format!("boundary {} never fired", spec.boundary)],
        });
    }
    verify_restarted_recovery(spec)
}

/// FNV-1a hash of the reopened on-disk image (for reports).
pub fn reopened_image_hash(spec: &RestartSpec) -> Result<u64> {
    let sys = NearPmSystem::reopen_from(spec.system_config(), &spec.dir)?;
    Ok(crashpoint::media_hash(&sys))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("nearpm-restart-{tag}-{}", std::process::id()))
    }

    fn spec(mech: CcMech, pipeline: PipelineMode, boundary: u64, tag: &str) -> RestartSpec {
        RestartSpec {
            mech,
            pipeline,
            mode: ExecMode::NearPmMd,
            units: 2,
            boundary,
            dir: temp_dir(tag),
        }
    }

    #[test]
    fn env_round_trip() {
        let s = spec(CcMech::ShadowPaging, PipelineMode::Pipelined, 7, "env");
        for (k, v) in s.to_env() {
            std::env::set_var(k, v);
        }
        let parsed = RestartSpec::from_env().expect("parse");
        std::env::remove_var(CHILD_ENV);
        assert_eq!(parsed, s);
    }

    #[test]
    fn every_mechanism_recovers_after_drop_and_reopen() {
        for (i, mech) in CcMech::ALL.into_iter().enumerate() {
            let mut s = spec(
                mech,
                PipelineMode::Serial,
                0,
                &format!("drop-{}", mech.label()),
            );
            // A mid-run boundary: deep enough that at least one unit is in
            // flight or committed.
            let total = count_boundaries(&s).unwrap();
            assert!(total > 2, "{mech}: too few boundaries");
            s.boundary = (total / 2) + i as u64 % 2;
            let outcome = drop_and_reopen(&s).unwrap();
            std::fs::remove_dir_all(&s.dir).ok();
            assert!(
                outcome.ok(),
                "{mech}: restart recovery failed: {:?}",
                outcome.failures
            );
            assert!(outcome.fired.is_some());
        }
    }

    #[test]
    fn pipelined_shadow_restart_recovers_every_boundary() {
        let mut s = spec(
            CcMech::ShadowPaging,
            PipelineMode::Pipelined,
            0,
            "shadow-all",
        );
        let total = count_boundaries(&s).unwrap();
        for b in 0..total {
            s.boundary = b;
            let outcome = drop_and_reopen(&s).unwrap();
            assert!(
                outcome.ok(),
                "boundary {b}: restart recovery failed: {:?}",
                outcome.failures
            );
        }
        std::fs::remove_dir_all(&s.dir).ok();
    }

    #[test]
    fn out_of_range_boundary_is_reported_not_panicked() {
        let s = spec(CcMech::UndoLog, PipelineMode::Serial, 100_000, "oob");
        let outcome = drop_and_reopen(&s).unwrap();
        std::fs::remove_dir_all(&s.dir).ok();
        assert!(!outcome.ok());
        assert!(outcome.failures[0].contains("never fired"));
    }
}
