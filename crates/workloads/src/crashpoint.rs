//! # Exhaustive crash-point exploration
//!
//! Enumerates **every** crash boundary of a deterministic workload run —
//! each CPU persist, offload posting, sync, and commit-retire event (see
//! [`BoundaryKind`]) — then replays the run once per boundary, injects a
//! crash exactly there with a [`CrashPlan`], runs the mechanism's
//! `recover()`, and proves three invariants at every point:
//!
//! 1. **Committed-prefix oracle.** The post-recovery application image
//!    equals one of the legal images recorded by an uncrashed oracle run:
//!    the state after the last unit known committed before the crash, the
//!    state after the unit that was in flight (the marker protocols may
//!    legitimately roll it forward), or — for pipelined shadow paging,
//!    whose page switches commit per page — a recorded per-site
//!    intermediate of the in-flight unit. Never a torn mix.
//! 2. **Clean ordering.** The recorded trace has zero PPO violations after
//!    recovery.
//! 3. **Idempotence.** Crashing again immediately and re-running
//!    `recover()` finds nothing to do and leaves the image byte-identical.
//!
//! Exhaustiveness argument: media mutations apply at primitive call time
//! and the only state mutable *between* boundaries is volatile (CPU cache
//! lines, device FIFOs), so a crash strictly between two boundaries is
//! functionally identical to a crash at the earlier one — enumerating the
//! boundaries enumerates every functionally distinct crash point.
//!
//! Replays that land in the same *equivalence class* — same fired boundary
//! kind, same persistent-image hash at the moment of the crash, and same
//! committed-unit progress — must recover identically; the explorer tracks
//! the classes and reports the dedup ratio. By default every boundary is
//! still fully verified (no sampling); [`ExplorerConfig::prune`] skips the
//! invariant checks for duplicate classes when speed matters. One media
//! write-log differential (replay of the recorded mutation history onto a
//! zeroed image must reproduce the live image) runs per class
//! representative.

use nearpm_cc::{Checkpoint, RedoLog, ShadowPaging, UndoLog};
use nearpm_core::{
    BoundaryKind, CrashPlan, ExecMode, MediaConfig, NearPmSystem, Region, Result, SystemConfig,
    SystemError, VirtAddr,
};
use std::collections::HashSet;
use std::fmt;

/// Size of the application object under test (two PM pages).
const APP_LEN: usize = 8192;
/// One PM page.
const PAGE: usize = 4096;
/// Offset of the shadow-paging update site inside its logical page.
const SHADOW_OFF: u64 = 128;
/// Length of a shadow-paging update.
const SHADOW_LEN: usize = 64;
/// Log-arena pages per device for the logging/checkpoint mechanisms.
const ARENA_PAGES: usize = 16;

/// The four crash-consistency mechanisms the explorer drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CcMech {
    /// Undo logging ([`UndoLog`]).
    UndoLog,
    /// Redo logging ([`RedoLog`]).
    RedoLog,
    /// Page-granular checkpointing ([`Checkpoint`]).
    Checkpoint,
    /// Shadow paging ([`ShadowPaging`]).
    ShadowPaging,
}

impl CcMech {
    /// All four mechanisms, in report order.
    pub const ALL: [CcMech; 4] = [
        CcMech::UndoLog,
        CcMech::RedoLog,
        CcMech::Checkpoint,
        CcMech::ShadowPaging,
    ];

    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            CcMech::UndoLog => "undo-log",
            CcMech::RedoLog => "redo-log",
            CcMech::Checkpoint => "checkpoint",
            CcMech::ShadowPaging => "shadow-paging",
        }
    }
}

impl fmt::Display for CcMech {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Whether each unit drives the mechanism's split-phase (pipelined)
/// multi-site path or the serial one-site-at-a-time path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineMode {
    /// Multi-site units through the split-phase paths (`log_range` over the
    /// whole object, `touch_many`, `update_many`).
    Pipelined,
    /// Single-site units through the serial paths.
    Serial,
}

impl PipelineMode {
    /// Both pipeline modes.
    pub const ALL: [PipelineMode; 2] = [PipelineMode::Pipelined, PipelineMode::Serial];

    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            PipelineMode::Pipelined => "pipelined",
            PipelineMode::Serial => "serial",
        }
    }
}

impl fmt::Display for PipelineMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One cell of the exploration matrix.
#[derive(Debug, Clone)]
pub struct ExplorerConfig {
    /// Mechanism under test.
    pub mech: CcMech,
    /// Pipelined or serial unit shape.
    pub pipeline: PipelineMode,
    /// Execution mode (device count and sync policy follow from it).
    pub mode: ExecMode,
    /// Committed units (transactions / epochs / page updates) per run.
    pub units: usize,
    /// When true, boundaries whose equivalence class was already verified
    /// skip the invariant checks (the class representative proved them).
    pub prune: bool,
    /// Media storage engine every replayed system uses (heap by default).
    /// Sequential replays with a file backend can share one directory:
    /// creating a device truncates its file, so each replay starts clean.
    pub media: MediaConfig,
}

impl ExplorerConfig {
    /// A config with the default smoke-test depth (3 units, no pruning).
    pub fn new(mech: CcMech, pipeline: PipelineMode, mode: ExecMode) -> Self {
        ExplorerConfig {
            mech,
            pipeline,
            mode,
            units: 3,
            prune: false,
            media: MediaConfig::Heap,
        }
    }

    /// Overrides the media storage engine.
    pub fn with_media(mut self, media: MediaConfig) -> Self {
        self.media = media;
        self
    }
}

/// Result of exploring one [`ExplorerConfig`] cell.
#[derive(Debug, Clone)]
pub struct ExplorationReport {
    /// Mechanism explored.
    pub mech: CcMech,
    /// Pipeline shape.
    pub pipeline: PipelineMode,
    /// Execution mode.
    pub mode: ExecMode,
    /// Units per run.
    pub units: usize,
    /// Total crash boundaries the oracle run observed.
    pub boundaries: u64,
    /// Boundaries by kind, in [`BoundaryKind::ALL`] order.
    pub by_kind: [u64; 4],
    /// Crash points actually injected (always equals `boundaries`).
    pub explored: u64,
    /// Crash points that went through the full three-invariant check.
    pub verified: u64,
    /// Crash points skipped as duplicates of a verified class (prune mode).
    pub pruned: u64,
    /// Distinct equivalence classes (kind, image hash, progress).
    pub classes: u64,
    /// Media write-log differential replays performed (one per class).
    pub write_log_checks: u64,
    /// Human-readable invariant failures; empty on success.
    pub failures: Vec<String>,
}

impl ExplorationReport {
    /// True when every explored boundary recovered cleanly.
    pub fn ok(&self) -> bool {
        self.failures.is_empty() && self.explored == self.boundaries
    }

    /// Explored boundaries per equivalence class (≥ 1.0; higher means more
    /// redundancy an equivalence-class pruner can exploit).
    pub fn dedup_ratio(&self) -> f64 {
        if self.classes == 0 {
            1.0
        } else {
            self.explored as f64 / self.classes as f64
        }
    }
}

impl fmt::Display for ExplorationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/{}: {} boundaries (persist {} offload {} sync {} commit-retire {}), \
             explored {}, verified {}, pruned {}, {} classes (dedup {:.2}x), \
             {} write-log replays, {} failures",
            self.mech,
            self.pipeline,
            self.mode.label(),
            self.boundaries,
            self.by_kind[0],
            self.by_kind[1],
            self.by_kind[2],
            self.by_kind[3],
            self.explored,
            self.verified,
            self.pruned,
            self.classes,
            self.dedup_ratio(),
            self.write_log_checks,
            self.failures.len(),
        )
    }
}

/// What a mechanism's `recover()` reports, normalized across mechanisms.
pub(crate) struct RecoveryOutcome {
    /// Entries rolled back / forward / restored (0 for shadow paging).
    pub(crate) work: u64,
    /// Shadow paging's recovered page-table mapping.
    pub(crate) mapping: Option<Vec<VirtAddr>>,
}

/// One system + mechanism instance replaying the deterministic workload.
/// Shared with the restart-recovery harness (`crate::restart`), which runs
/// the same workload in a child process over a file-backed image.
pub(crate) struct Driver {
    pub(crate) sys: NearPmSystem,
    pipeline: PipelineMode,
    state: State,
}

enum State {
    Undo {
        log: UndoLog,
        obj: VirtAddr,
    },
    Redo {
        log: RedoLog,
        obj: VirtAddr,
    },
    Ckpt {
        ck: Checkpoint,
        pages: [VirtAddr; 2],
    },
    Shadow {
        sp: Box<ShadowPaging>,
    },
}

/// Fill byte for unit `u`, site `s` — distinct per (unit, site) so torn
/// images are unambiguous.
pub(crate) fn fill_byte(u: usize, s: usize) -> u8 {
    (1 + 2 * u + s) as u8
}

impl Driver {
    pub(crate) fn new(cfg: &ExplorerConfig, with_write_log: bool) -> Result<Driver> {
        let mut sys = NearPmSystem::try_new(
            SystemConfig::for_mode(cfg.mode)
                .with_capacity(32 << 20)
                .with_media(cfg.media.clone()),
        )?;
        if with_write_log {
            sys.enable_media_write_log();
        }
        let pool = sys.create_pool("crashpoint", 16 << 20)?;
        let state = match cfg.mech {
            CcMech::UndoLog | CcMech::RedoLog => {
                let obj = sys.alloc(pool, APP_LEN as u64, PAGE as u64)?;
                sys.cpu_write_persist(0, obj, &[0xA5; APP_LEN], Region::AppPersist)?;
                match cfg.mech {
                    CcMech::UndoLog => State::Undo {
                        log: UndoLog::new(&mut sys, pool, 0, ARENA_PAGES)?,
                        obj,
                    },
                    _ => State::Redo {
                        log: RedoLog::new(&mut sys, pool, 0, ARENA_PAGES)?,
                        obj,
                    },
                }
            }
            CcMech::Checkpoint => {
                let p0 = sys.alloc(pool, PAGE as u64, PAGE as u64)?;
                let p1 = sys.alloc(pool, PAGE as u64, PAGE as u64)?;
                sys.cpu_write_persist(0, p0, &[0xA5; PAGE], Region::AppPersist)?;
                sys.cpu_write_persist(0, p1, &[0xA5; PAGE], Region::AppPersist)?;
                State::Ckpt {
                    ck: Checkpoint::new(&mut sys, pool, 0, ARENA_PAGES)?,
                    pages: [p0, p1],
                }
            }
            CcMech::ShadowPaging => {
                let mut sp = Box::new(ShadowPaging::new(&mut sys, pool, 0, 2, ARENA_PAGES)?);
                for i in 0..2 {
                    let page = sp.page_addr(&mut sys, i)?;
                    sys.cpu_write_persist(0, page, &[0xA5; PAGE], Region::AppPersist)?;
                }
                State::Shadow { sp }
            }
        };
        Ok(Driver {
            sys,
            pipeline: cfg.pipeline,
            state,
        })
    }

    /// Re-creates a driver over a reopened — and still crashed — system
    /// image: the same pool and allocation sequence as [`Driver::new`] (so
    /// every object, marker, table, and arena slot lands at the address the
    /// crashed process used) but without any of the initial-image writes;
    /// the persistent image is authoritative. The checkpoint epoch counter
    /// comes from the reopened system itself (read back from the media
    /// manifest), so nothing about the pre-crash run needs replaying here.
    pub(crate) fn reattach(cfg: &ExplorerConfig, mut sys: NearPmSystem) -> Result<Driver> {
        let pool = sys.create_pool("crashpoint", 16 << 20)?;
        let state = match cfg.mech {
            CcMech::UndoLog | CcMech::RedoLog => {
                let obj = sys.alloc(pool, APP_LEN as u64, PAGE as u64)?;
                match cfg.mech {
                    CcMech::UndoLog => State::Undo {
                        log: UndoLog::new(&mut sys, pool, 0, ARENA_PAGES)?,
                        obj,
                    },
                    _ => State::Redo {
                        log: RedoLog::new(&mut sys, pool, 0, ARENA_PAGES)?,
                        obj,
                    },
                }
            }
            CcMech::Checkpoint => {
                let p0 = sys.alloc(pool, PAGE as u64, PAGE as u64)?;
                let p1 = sys.alloc(pool, PAGE as u64, PAGE as u64)?;
                State::Ckpt {
                    ck: Checkpoint::reattach(&mut sys, pool, 0, ARENA_PAGES)?,
                    pages: [p0, p1],
                }
            }
            CcMech::ShadowPaging => State::Shadow {
                sp: Box::new(ShadowPaging::reattach(&mut sys, pool, 0, 2, ARENA_PAGES)?),
            },
        };
        Ok(Driver {
            sys,
            pipeline: cfg.pipeline,
            state,
        })
    }

    /// Runs committed unit `u`: one transaction / epoch / page-update step.
    pub(crate) fn run_unit(&mut self, u: usize) -> Result<()> {
        let sys = &mut self.sys;
        match &mut self.state {
            State::Undo { log, obj } => {
                log.begin(sys)?;
                match self.pipeline {
                    PipelineMode::Pipelined => {
                        log.log_range(sys, *obj, APP_LEN as u64)?;
                        for s in 0..2 {
                            let site = obj.offset((s * PAGE) as u64);
                            log.update(sys, site, &vec![fill_byte(u, s); PAGE])?;
                        }
                    }
                    PipelineMode::Serial => {
                        let site = obj.offset(((u % 2) * PAGE) as u64);
                        log.log_range(sys, site, PAGE as u64)?;
                        log.update(sys, site, &vec![fill_byte(u, 0); PAGE])?;
                    }
                }
                log.commit(sys)
            }
            State::Redo { log, obj } => {
                log.begin(sys)?;
                match self.pipeline {
                    PipelineMode::Pipelined => {
                        for s in 0..2 {
                            let site = obj.offset((s * PAGE) as u64);
                            log.stage(sys, site, &vec![fill_byte(u, s); PAGE])?;
                        }
                    }
                    PipelineMode::Serial => {
                        let site = obj.offset(((u % 2) * PAGE) as u64);
                        log.stage(sys, site, &vec![fill_byte(u, 0); PAGE])?;
                    }
                }
                log.commit(sys)
            }
            State::Ckpt { ck, pages } => {
                match self.pipeline {
                    PipelineMode::Pipelined => {
                        ck.touch_many(sys, &[pages[0], pages[1]])?;
                        for (s, page) in pages.iter().enumerate() {
                            ck.update(sys, *page, &vec![fill_byte(u, s); PAGE])?;
                        }
                    }
                    PipelineMode::Serial => {
                        let page = pages[u % 2];
                        ck.touch(sys, page)?;
                        ck.update(sys, page, &vec![fill_byte(u, 0); PAGE])?;
                    }
                }
                ck.advance_epoch(sys)
            }
            State::Shadow { sp } => match self.pipeline {
                PipelineMode::Pipelined => {
                    let sites: Vec<(usize, u64, Vec<u8>)> = (0..2)
                        .map(|s| (s, SHADOW_OFF, vec![fill_byte(u, s); SHADOW_LEN]))
                        .collect();
                    sp.update_many(sys, &sites)
                }
                PipelineMode::Serial => {
                    sp.update(sys, u % 2, SHADOW_OFF, &[fill_byte(u, 0); SHADOW_LEN])
                }
            },
        }
    }

    /// The application image: the home object, the checkpointed pages, or
    /// the logical pages behind the persistent shadow page table. Read
    /// directly off the media, so it is valid while crashed.
    pub(crate) fn app_image(&mut self) -> Result<Vec<u8>> {
        let sys = &mut self.sys;
        match &mut self.state {
            State::Undo { obj, .. } | State::Redo { obj, .. } => sys.persistent_read(*obj, APP_LEN),
            State::Ckpt { pages, .. } => {
                let mut image = sys.persistent_read(pages[0], PAGE)?;
                image.extend(sys.persistent_read(pages[1], PAGE)?);
                Ok(image)
            }
            State::Shadow { sp } => {
                let mut image = Vec::with_capacity(2 * PAGE);
                for i in 0..2 {
                    let page = sp.page_addr(sys, i)?;
                    image.extend(sys.persistent_read(page, PAGE)?);
                }
                Ok(image)
            }
        }
    }

    /// Runs the mechanism's recovery and normalizes the result.
    pub(crate) fn recover(&mut self) -> Result<RecoveryOutcome> {
        let sys = &mut self.sys;
        Ok(match &mut self.state {
            State::Undo { log, .. } => RecoveryOutcome {
                work: log.recover(sys)? as u64,
                mapping: None,
            },
            State::Redo { log, .. } => RecoveryOutcome {
                work: log.recover(sys)? as u64,
                mapping: None,
            },
            State::Ckpt { ck, .. } => RecoveryOutcome {
                work: ck.recover(sys)? as u64,
                mapping: None,
            },
            State::Shadow { sp } => RecoveryOutcome {
                work: 0,
                mapping: Some(sp.recover(sys)?),
            },
        })
    }

    /// The legal post-recovery images when the crash interrupted unit
    /// `u_ok` (0-based; `u_ok` units committed for sure): the committed
    /// prefix, the in-flight unit rolled forward, and — pipelined shadow
    /// paging only — the per-site intermediate after the first of the in-
    /// flight unit's two page switches (page switches commit per page, not
    /// per unit).
    pub(crate) fn legal_images(&self, oracle: &[Vec<u8>], u_ok: usize) -> Vec<Vec<u8>> {
        let mut legal = vec![oracle[u_ok].clone()];
        if u_ok + 1 < oracle.len() {
            if matches!(self.state, State::Shadow { .. })
                && self.pipeline == PipelineMode::Pipelined
            {
                let mut partial = oracle[u_ok].clone();
                let start = SHADOW_OFF as usize;
                partial[start..start + SHADOW_LEN]
                    .copy_from_slice(&[fill_byte(u_ok, 0); SHADOW_LEN]);
                legal.push(partial);
            }
            legal.push(oracle[u_ok + 1].clone());
        }
        legal
    }
}

/// FNV-1a over every backing device's full media image (any backend).
pub(crate) fn media_hash(sys: &NearPmSystem) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for d in 0..sys.media_count() {
        for &b in &sys.device_image(d) {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Explores one matrix cell: enumerates the run's boundaries with a
/// counting [`CrashPlan`], records the committed-prefix oracle images, then
/// replays the run once per boundary with the crash injected there and
/// checks the three invariants. Every boundary is explored — pruning (when
/// enabled) only skips re-verifying a class that already passed.
pub fn explore(cfg: &ExplorerConfig) -> Result<ExplorationReport> {
    assert!(cfg.units > 0, "explorer needs at least one unit");

    // Oracle run: count boundaries, record the legal image after every
    // committed unit. Arming happens after setup in every run, so boundary
    // numbering is identical across replays.
    let mut oracle_drv = Driver::new(cfg, false)?;
    let mut oracle: Vec<Vec<u8>> = vec![oracle_drv.app_image()?];
    oracle_drv.sys.arm_crash_plan(CrashPlan::count_only());
    for u in 0..cfg.units {
        oracle_drv.run_unit(u)?;
        oracle.push(oracle_drv.app_image()?);
    }
    let counter = oracle_drv
        .sys
        .disarm_crash_plan()
        .expect("counting plan still armed");
    let boundaries = counter.observed_total();
    let by_kind = [
        counter.observed_of(BoundaryKind::Persist),
        counter.observed_of(BoundaryKind::Offload),
        counter.observed_of(BoundaryKind::Sync),
        counter.observed_of(BoundaryKind::CommitRetire),
    ];

    let mut report = ExplorationReport {
        mech: cfg.mech,
        pipeline: cfg.pipeline,
        mode: cfg.mode,
        units: cfg.units,
        boundaries,
        by_kind,
        explored: 0,
        verified: 0,
        pruned: 0,
        classes: 0,
        write_log_checks: 0,
        failures: Vec::new(),
    };
    let mut seen: HashSet<(Option<BoundaryKind>, u64, usize)> = HashSet::new();

    for n in 0..boundaries {
        let mut drv = Driver::new(cfg, true)?;
        drv.sys.arm_crash_plan(CrashPlan::at_boundary(n));
        // Units committed for certain before the crash. A unit whose last
        // boundary fired the crash still returns Ok (the crash lands after
        // the primitive's effect), so an Ok unit counts even when the
        // system is already down.
        let mut u_ok = 0;
        for u in 0..cfg.units {
            match drv.run_unit(u) {
                Ok(()) => {
                    u_ok = u + 1;
                    if drv.sys.is_crashed() {
                        break;
                    }
                }
                Err(SystemError::Crashed) => break,
                Err(e) => return Err(e),
            }
        }
        report.explored += 1;
        if !drv.sys.is_crashed() {
            report
                .failures
                .push(format!("boundary {n}: crash plan never fired"));
            continue;
        }
        let plan = drv.sys.disarm_crash_plan().expect("plan still armed");
        let key = (plan.fired_kind(), media_hash(&drv.sys), u_ok);
        let new_class = seen.insert(key);
        if new_class {
            report.classes += 1;
        } else if cfg.prune {
            report.pruned += 1;
            continue;
        }

        // Invariant 1: the recovered image is a legal committed prefix.
        let outcome = drv.recover()?;
        let image = drv.app_image()?;
        let legal = drv.legal_images(&oracle, u_ok);
        if !legal.contains(&image) {
            report.failures.push(format!(
                "boundary {n} ({}): recovered image matches none of the {} legal \
                 committed-prefix images at progress {u_ok}",
                plan.fired_kind().map_or("?", |k| k.label()),
                legal.len(),
            ));
            continue;
        }

        // Invariant 2: the post-recovery trace is PPO-clean.
        let violations = drv.sys.report().ppo_violations;
        if !violations.is_empty() {
            report.failures.push(format!(
                "boundary {n}: {} PPO violations after recovery",
                violations.len()
            ));
            continue;
        }

        // Media write-log differential, once per equivalence class.
        if new_class {
            report.write_log_checks += 1;
            if !drv.sys.verify_write_log_replay() {
                report.failures.push(format!(
                    "boundary {n}: media write-log replay diverges from the live image"
                ));
                continue;
            }
        }

        // Invariant 3: a second crash + recovery is a no-op.
        drv.sys.crash();
        let second = drv.recover()?;
        let image2 = drv.app_image()?;
        if second.work != 0 {
            report.failures.push(format!(
                "boundary {n}: second recovery re-did {} entries",
                second.work
            ));
            continue;
        }
        if let (Some(m1), Some(m2)) = (&outcome.mapping, &second.mapping) {
            if m1 != m2 {
                report.failures.push(format!(
                    "boundary {n}: second recovery changed the page table"
                ));
                continue;
            }
        }
        if image2 != image {
            report
                .failures
                .push(format!("boundary {n}: second recovery changed the image"));
            continue;
        }
        report.verified += 1;
    }
    Ok(report)
}

/// Explores the full matrix: all four mechanisms × both pipeline shapes ×
/// the given execution modes.
pub fn explore_matrix(
    modes: &[ExecMode],
    units: usize,
    prune: bool,
) -> Result<Vec<ExplorationReport>> {
    let mut reports = Vec::new();
    for mech in CcMech::ALL {
        for pipeline in PipelineMode::ALL {
            for &mode in modes {
                let cfg = ExplorerConfig {
                    mech,
                    pipeline,
                    mode,
                    units,
                    prune,
                    media: MediaConfig::Heap,
                };
                reports.push(explore(&cfg)?);
            }
        }
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(mech: CcMech, pipeline: PipelineMode, mode: ExecMode) -> ExplorationReport {
        let cfg = ExplorerConfig {
            mech,
            pipeline,
            mode,
            units: 2,
            prune: false,
            media: MediaConfig::Heap,
        };
        explore(&cfg).unwrap()
    }

    #[test]
    fn undo_log_every_boundary_recovers() {
        let r = run(CcMech::UndoLog, PipelineMode::Pipelined, ExecMode::NearPmMd);
        assert!(r.ok(), "failures: {:?}", r.failures);
        assert!(r.boundaries > 0);
        assert_eq!(r.explored, r.boundaries);
        assert_eq!(r.verified, r.boundaries);
    }

    #[test]
    fn redo_log_every_boundary_recovers() {
        let r = run(CcMech::RedoLog, PipelineMode::Serial, ExecMode::NearPmSd);
        assert!(r.ok(), "failures: {:?}", r.failures);
        assert_eq!(r.verified, r.boundaries);
    }

    #[test]
    fn checkpoint_every_boundary_recovers() {
        let r = run(
            CcMech::Checkpoint,
            PipelineMode::Pipelined,
            ExecMode::NearPmMdSync,
        );
        assert!(r.ok(), "failures: {:?}", r.failures);
        assert_eq!(r.verified, r.boundaries);
    }

    #[test]
    fn shadow_paging_every_boundary_recovers() {
        let r = run(
            CcMech::ShadowPaging,
            PipelineMode::Pipelined,
            ExecMode::NearPmMd,
        );
        assert!(r.ok(), "failures: {:?}", r.failures);
        assert_eq!(r.verified, r.boundaries);
    }

    #[test]
    fn cpu_baseline_is_covered_too() {
        let r = run(CcMech::UndoLog, PipelineMode::Serial, ExecMode::CpuBaseline);
        assert!(r.ok(), "failures: {:?}", r.failures);
        // The baseline has no offloads: every boundary is persist or
        // commit-retire/sync.
        assert_eq!(r.by_kind[1], 0);
    }

    /// A file-backed cell must explore the same boundary space and verify
    /// every point exactly like the heap cell: the media engine is
    /// orthogonal to the crash-consistency protocol. All replays share one
    /// directory — creating a device truncates its file, so each replay
    /// starts clean.
    #[test]
    fn file_media_cell_matches_heap_cell() {
        let dir =
            std::env::temp_dir().join(format!("nearpm-crashpoint-file-{}", std::process::id()));
        let mut heap_cfg =
            ExplorerConfig::new(CcMech::UndoLog, PipelineMode::Serial, ExecMode::NearPmMd);
        heap_cfg.units = 2;
        let file_cfg = heap_cfg
            .clone()
            .with_media(MediaConfig::File { dir: dir.clone() });
        let heap = explore(&heap_cfg).unwrap();
        let file = explore(&file_cfg).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert!(file.ok(), "failures: {:?}", file.failures);
        assert_eq!(file.boundaries, heap.boundaries);
        assert_eq!(file.verified, heap.verified);
        assert_eq!(file.classes, heap.classes);
    }

    #[test]
    fn pruning_skips_duplicate_classes_but_explores_everything() {
        let cfg = ExplorerConfig {
            mech: CcMech::UndoLog,
            pipeline: PipelineMode::Pipelined,
            mode: ExecMode::NearPmMd,
            units: 2,
            prune: true,
            media: MediaConfig::Heap,
        };
        let r = explore(&cfg).unwrap();
        assert!(r.ok(), "failures: {:?}", r.failures);
        assert_eq!(r.explored, r.boundaries);
        assert_eq!(r.verified + r.pruned, r.boundaries);
        assert_eq!(r.verified, r.classes);
        assert!(r.dedup_ratio() >= 1.0);
    }
}
