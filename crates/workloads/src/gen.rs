//! Workload generators: YCSB-style key selection, TPC-C and TATP transaction
//! mixes.
//!
//! The evaluation drives Redis/Memcached with 100 %-write YCSB, the PMDK
//! stores with random inserts of 64-byte values, and TPCC/TATP with their
//! standard transaction mixes. These generators are deterministic given a
//! seed so that every configuration of a figure sees the same request
//! stream.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Zipfian key-popularity generator (the YCSB default, theta = 0.99).
#[derive(Debug, Clone)]
pub struct Zipfian {
    items: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    rng: StdRng,
}

impl Zipfian {
    /// Creates a generator over `items` keys with the YCSB constant 0.99.
    pub fn new(items: u64, seed: u64) -> Self {
        Self::with_theta(items, 0.99, seed)
    }

    /// Creates a generator with an explicit skew parameter.
    pub fn with_theta(items: u64, theta: f64, seed: u64) -> Self {
        let items = items.max(1);
        let zetan = Self::zeta(items, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / items as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            items,
            theta,
            alpha,
            zetan,
            eta,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Next key in `[0, items)`.
    pub fn next_key(&mut self) -> u64 {
        let u: f64 = self.rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let k = (self.items as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        k.min(self.items - 1)
    }

    /// Number of items.
    pub fn items(&self) -> u64 {
        self.items
    }
}

/// YCSB operation types. The paper uses a 100 %-write workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YcsbOp {
    /// Insert or update a key.
    Update {
        /// Selected key.
        key: u64,
        /// Value size in bytes.
        value_size: u64,
    },
    /// Read a key (unused in the 100 %-write configuration, kept for
    /// completeness).
    Read {
        /// Selected key.
        key: u64,
    },
}

/// YCSB-style request generator.
#[derive(Debug, Clone)]
pub struct YcsbGenerator {
    keys: Zipfian,
    write_fraction: f64,
    value_size: u64,
    rng: StdRng,
}

impl YcsbGenerator {
    /// 100 %-write generator as used by the paper for Redis and Memcached.
    pub fn write_only(items: u64, value_size: u64, seed: u64) -> Self {
        YcsbGenerator {
            keys: Zipfian::new(items, seed ^ 0x5eed),
            write_fraction: 1.0,
            value_size,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generator with an arbitrary write fraction (e.g. YCSB-A is 0.5).
    pub fn with_write_fraction(
        items: u64,
        value_size: u64,
        write_fraction: f64,
        seed: u64,
    ) -> Self {
        YcsbGenerator {
            keys: Zipfian::new(items, seed ^ 0x5eed),
            write_fraction,
            value_size,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Next operation.
    pub fn next_op(&mut self) -> YcsbOp {
        let key = self.keys.next_key();
        if self.rng.gen::<f64>() < self.write_fraction {
            YcsbOp::Update {
                key,
                value_size: self.value_size,
            }
        } else {
            YcsbOp::Read { key }
        }
    }
}

/// TPC-C transaction types in the standard mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpccTxn {
    /// New-order (45 %): inserts an order with 5–15 order lines.
    NewOrder {
        /// Number of order lines.
        lines: u32,
    },
    /// Payment (43 %): updates warehouse, district, customer balances.
    Payment,
    /// Delivery / order-status / stock-level (12 %): lighter updates.
    Delivery,
}

/// TPC-C transaction generator.
#[derive(Debug, Clone)]
pub struct TpccGenerator {
    rng: StdRng,
}

impl TpccGenerator {
    /// Creates a generator.
    pub fn new(seed: u64) -> Self {
        TpccGenerator {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Next transaction.
    pub fn next_txn(&mut self) -> TpccTxn {
        let r: f64 = self.rng.gen();
        if r < 0.45 {
            TpccTxn::NewOrder {
                lines: self.rng.gen_range(5..=15),
            }
        } else if r < 0.88 {
            TpccTxn::Payment
        } else {
            TpccTxn::Delivery
        }
    }
}

/// TATP transaction types (update-heavy subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TatpTxn {
    /// Update-subscriber-data: one small row update.
    UpdateSubscriber {
        /// Subscriber id.
        subscriber: u64,
    },
    /// Update-location: one tiny (8-byte) field update.
    UpdateLocation {
        /// Subscriber id.
        subscriber: u64,
    },
}

/// TATP transaction generator over `subscribers` rows.
#[derive(Debug, Clone)]
pub struct TatpGenerator {
    subscribers: u64,
    rng: StdRng,
}

impl TatpGenerator {
    /// Creates a generator.
    pub fn new(subscribers: u64, seed: u64) -> Self {
        TatpGenerator {
            subscribers: subscribers.max(1),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Next transaction.
    pub fn next_txn(&mut self) -> TatpTxn {
        let subscriber = self.rng.gen_range(0..self.subscribers);
        if self.rng.gen::<f64>() < 0.5 {
            TatpTxn::UpdateSubscriber { subscriber }
        } else {
            TatpTxn::UpdateLocation { subscriber }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipfian_is_skewed_and_in_range() {
        let mut z = Zipfian::new(1000, 42);
        let mut counts = vec![0u64; 1000];
        for _ in 0..20_000 {
            let k = z.next_key();
            assert!(k < 1000);
            counts[k as usize] += 1;
        }
        // The most popular key should be dramatically more frequent than the
        // median key under a 0.99-skew Zipfian.
        let max = *counts.iter().max().unwrap();
        let median = {
            let mut c = counts.clone();
            c.sort_unstable();
            c[500]
        };
        assert!(
            max > median * 5,
            "zipfian not skewed: max={max} median={median}"
        );
        assert_eq!(z.items(), 1000);
    }

    #[test]
    fn zipfian_is_deterministic_per_seed() {
        let mut a = Zipfian::new(100, 7);
        let mut b = Zipfian::new(100, 7);
        let mut c = Zipfian::new(100, 8);
        let seq_a: Vec<u64> = (0..50).map(|_| a.next_key()).collect();
        let seq_b: Vec<u64> = (0..50).map(|_| b.next_key()).collect();
        let seq_c: Vec<u64> = (0..50).map(|_| c.next_key()).collect();
        assert_eq!(seq_a, seq_b);
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn ycsb_write_only_generates_updates() {
        let mut g = YcsbGenerator::write_only(100, 64, 1);
        for _ in 0..100 {
            match g.next_op() {
                YcsbOp::Update { key, value_size } => {
                    assert!(key < 100);
                    assert_eq!(value_size, 64);
                }
                YcsbOp::Read { .. } => panic!("write-only workload produced a read"),
            }
        }
    }

    #[test]
    fn ycsb_mixed_produces_reads_and_writes() {
        let mut g = YcsbGenerator::with_write_fraction(100, 64, 0.5, 3);
        let mut reads = 0;
        let mut writes = 0;
        for _ in 0..1000 {
            match g.next_op() {
                YcsbOp::Update { .. } => writes += 1,
                YcsbOp::Read { .. } => reads += 1,
            }
        }
        assert!(reads > 300 && writes > 300);
    }

    #[test]
    fn tpcc_mix_roughly_matches_standard() {
        let mut g = TpccGenerator::new(11);
        let mut new_order = 0;
        let mut payment = 0;
        let mut other = 0;
        for _ in 0..10_000 {
            match g.next_txn() {
                TpccTxn::NewOrder { lines } => {
                    assert!((5..=15).contains(&lines));
                    new_order += 1;
                }
                TpccTxn::Payment => payment += 1,
                TpccTxn::Delivery => other += 1,
            }
        }
        assert!((4000..5000).contains(&new_order), "{new_order}");
        assert!((3800..4800).contains(&payment), "{payment}");
        assert!((800..1600).contains(&other), "{other}");
    }

    #[test]
    fn tatp_subscribers_in_range() {
        let mut g = TatpGenerator::new(500, 9);
        for _ in 0..100 {
            match g.next_txn() {
                TatpTxn::UpdateSubscriber { subscriber }
                | TatpTxn::UpdateLocation { subscriber } => {
                    assert!(subscriber < 500)
                }
            }
        }
    }
}
